"""Shared workload mechanics: submission, completion, verification.

Both the synthetic generator and the trace replayer funnel requests
through this base class, which owns response recording, the
drained-event protocol, and read verification against expected
contents when the controller carries a data store.
"""

from __future__ import annotations

import typing

from repro.array.controller import ArrayController
from repro.array.datastore import initial_data_pattern
from repro.array.requests import UserRequest
from repro.workload.recorder import ResponseRecorder


class WorkloadBase:
    """Request submission and bookkeeping common to all workloads."""

    def __init__(
        self,
        controller: ArrayController,
        recorder: typing.Optional[ResponseRecorder] = None,
    ):
        self.controller = controller
        self.recorder = recorder if recorder is not None else ResponseRecorder()
        self.submitted = 0
        self.completed = 0
        self.integrity_errors: typing.List[str] = []
        self.verify = controller.datastore is not None
        self._expected: typing.Dict[int, int] = {}
        self._inflight_writes: typing.Dict[int, int] = {}
        self._verification_paused_until = -1.0
        self._stopped = False
        self._generator_done = False
        self._drained = None

    # ------------------------------------------------------------------
    # Control
    # ------------------------------------------------------------------
    def stop(self) -> None:
        """Stop issuing new requests (in-flight ones still complete)."""
        self._stopped = True

    def drained(self):
        """Event firing once generation ended and all requests completed."""
        self._drained = self.controller.env.event()
        self._maybe_drain()
        return self._drained

    def pause_verification(self) -> None:
        """Suspend read verification for requests submitted before now.

        Call at fault-injection instants: requests in flight across the
        failure may legitimately observe pre-failure state.
        """
        self._verification_paused_until = self.controller.env.now

    def _maybe_drain(self) -> None:
        if (
            self._drained is not None
            and not self._drained.triggered
            and self._generator_done
            and self.completed == self.submitted
        ):
            self._drained.succeed()

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def _submit(self, logical_unit: int, is_write: bool, num_units: int,
                values: typing.Optional[typing.List[int]] = None) -> None:
        if is_write and self.verify and values is None:
            raise ValueError("verifying workloads must supply write values")
        if is_write and values is not None:
            for i in range(num_units):
                unit = logical_unit + i
                self._inflight_writes[unit] = self._inflight_writes.get(unit, 0) + 1
        request = UserRequest(
            logical_unit=logical_unit,
            is_write=is_write,
            num_units=num_units,
            values=values,
        )
        self.submitted += 1
        done = self.controller.submit(request)
        self.controller.env.process(
            self._await_completion(request, done), name="workload-complete"
        )

    def _await_completion(self, request: UserRequest, done):
        yield done
        self.completed += 1
        self.recorder.record(
            complete_ms=request.complete_ms,
            response_ms=request.response_ms,
            is_write=request.is_write,
        )
        if self.verify:
            self._account(request)
        self._maybe_drain()

    # ------------------------------------------------------------------
    # Verification bookkeeping
    # ------------------------------------------------------------------
    def _account(self, request: UserRequest) -> None:
        if request.is_write:
            for i, unit in enumerate(request.units()):
                self._expected[unit] = request.values[i]
                remaining = self._inflight_writes.get(unit, 0) - 1
                if remaining <= 0:
                    self._inflight_writes.pop(unit, None)
                else:
                    self._inflight_writes[unit] = remaining
            return
        if request.submit_ms < self._verification_paused_until:
            return
        for i, unit in enumerate(request.units()):
            if unit in self._inflight_writes:
                continue  # racing write: either value is legitimate
            expected = self._expected.get(unit)
            if expected is None:
                # Never written: the unit must still hold its initial pattern.
                address = self.controller.addressing.logical_unit_address(unit)
                expected = initial_data_pattern(address.disk, address.offset)
            actual = request.read_values[i]
            if actual != expected:
                self.integrity_errors.append(
                    f"unit {unit}: read {actual:#x}, expected {expected:#x} "
                    f"(completed at {request.complete_ms:.3f} ms)"
                )
