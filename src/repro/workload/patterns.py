"""Trace generators for structured access patterns.

The paper's generator is uniform random; real storage workloads are
not. These helpers synthesize :class:`~repro.workload.trace.TraceRecord`
lists for the classic non-uniform shapes — sequential scans, Zipf-like
hot spots, and phased mixtures — so the same simulator can answer
questions the uniform model cannot (does declustering still balance
load under skew? how do sequential floods interact with recovery?).

All generators take an explicit RNG seed and produce deterministic
traces.
"""

from __future__ import annotations

import math
import typing

from repro.sim.rng import RandomStreams
from repro.workload.trace import TraceRecord


def _interarrivals(rng, rate_per_s: float, count: int) -> typing.List[float]:
    clock = 0.0
    times = []
    for _ in range(count):
        clock += rng.expovariate(rate_per_s / 1000.0)
        times.append(clock)
    return times


def sequential_scan(
    num_units: int,
    start_unit: int = 0,
    length: typing.Optional[int] = None,
    rate_per_s: float = 100.0,
    is_write: bool = False,
    access_units: int = 1,
    seed: int = 1992,
) -> typing.List[TraceRecord]:
    """A sequential pass over ``length`` units from ``start_unit``.

    Models backup/scan traffic: addresses advance strictly, arrivals
    are Poisson at ``rate_per_s``.
    """
    if length is None:
        length = num_units - start_unit
    if start_unit + length > num_units:
        raise ValueError("scan exceeds the data space")
    count = length // access_units
    rng = RandomStreams(seed).stream("scan-arrivals")
    times = _interarrivals(rng, rate_per_s, count)
    return [
        TraceRecord(
            at_ms=times[i],
            is_write=is_write,
            logical_unit=start_unit + i * access_units,
            num_units=access_units,
        )
        for i in range(count)
    ]


def zipf_hot_spot(
    num_units: int,
    count: int,
    rate_per_s: float = 100.0,
    read_fraction: float = 0.5,
    skew: float = 1.0,
    working_set: int = 100,
    seed: int = 1992,
) -> typing.List[TraceRecord]:
    """Zipf-distributed accesses over a working set of hot units.

    ``skew`` is the Zipf exponent (0 = uniform over the working set;
    ~1 = classic 80/20-like behaviour). The working set occupies the
    lowest unit numbers, spreading across parity stripes.
    """
    if not 1 <= working_set <= num_units:
        raise ValueError("working set must fit the data space")
    if skew < 0:
        raise ValueError("skew must be non-negative")
    streams = RandomStreams(seed)
    arrival_rng = streams.stream("zipf-arrivals")
    pick_rng = streams.stream("zipf-pick")
    kind_rng = streams.stream("zipf-kind")
    weights = [1.0 / math.pow(rank, skew) for rank in range(1, working_set + 1)]
    total = sum(weights)
    cumulative = []
    running = 0.0
    for weight in weights:
        running += weight
        cumulative.append(running / total)
    times = _interarrivals(arrival_rng, rate_per_s, count)

    def pick_unit() -> int:
        point = pick_rng.random()
        low, high = 0, working_set - 1
        while low < high:
            mid = (low + high) // 2
            if cumulative[mid] < point:
                low = mid + 1
            else:
                high = mid
        return low

    return [
        TraceRecord(
            at_ms=times[i],
            is_write=kind_rng.random() >= read_fraction,
            logical_unit=pick_unit(),
        )
        for i in range(count)
    ]


def phased(
    phases: typing.Sequence[typing.Sequence[TraceRecord]],
    gap_ms: float = 0.0,
) -> typing.List[TraceRecord]:
    """Concatenate traces end to end, optionally separated by idle gaps.

    Each phase's timestamps are shifted to start after the previous
    phase's last record (plus ``gap_ms``).
    """
    if gap_ms < 0:
        raise ValueError("gap must be non-negative")
    merged: typing.List[TraceRecord] = []
    offset = 0.0
    for phase in phases:
        ordered = sorted(phase, key=lambda r: r.at_ms)
        for record in ordered:
            merged.append(
                TraceRecord(
                    at_ms=offset + record.at_ms,
                    is_write=record.is_write,
                    logical_unit=record.logical_unit,
                    num_units=record.num_units,
                )
            )
        if ordered:
            offset = merged[-1].at_ms + gap_ms
    return merged
