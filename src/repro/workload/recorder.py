"""Response-time collection for completed user requests."""

from __future__ import annotations

import math
import typing
from dataclasses import dataclass


@dataclass
class ResponseSummary:
    """Aggregate response-time statistics over a measurement window."""

    count: int
    mean_ms: float
    std_ms: float
    min_ms: float
    max_ms: float
    p90_ms: float
    p99_ms: float

    @classmethod
    def empty(cls) -> "ResponseSummary":
        return cls(count=0, mean_ms=0.0, std_ms=0.0, min_ms=0.0, max_ms=0.0,
                   p90_ms=0.0, p99_ms=0.0)


class ResponseRecorder:
    """Collects (completion time, response time, is_write) samples.

    Supports a warm-up boundary: samples completing before ``warmup_ms``
    are excluded from summaries, which removes the empty-queue
    transient at simulation start.
    """

    def __init__(self, warmup_ms: float = 0.0):
        self.warmup_ms = warmup_ms
        self._samples: typing.List[typing.Tuple[float, float, bool]] = []

    def record(self, complete_ms: float, response_ms: float, is_write: bool) -> None:
        self._samples.append((complete_ms, response_ms, is_write))

    def __len__(self) -> int:
        return len(self._samples)

    def responses(
        self,
        reads_only: bool = False,
        writes_only: bool = False,
        since_ms: typing.Optional[float] = None,
        until_ms: typing.Optional[float] = None,
    ) -> typing.List[float]:
        """Response times passing the warm-up, window, and kind filters."""
        lower = self.warmup_ms if since_ms is None else max(self.warmup_ms, since_ms)
        selected = []
        for complete, response, is_write in self._samples:
            if complete < lower:
                continue
            if until_ms is not None and complete > until_ms:
                continue
            if reads_only and is_write:
                continue
            if writes_only and not is_write:
                continue
            selected.append(response)
        return selected

    def summary(self, **filters) -> ResponseSummary:
        """Aggregate statistics over the filtered samples."""
        samples = self.responses(**filters)
        if not samples:
            return ResponseSummary.empty()
        n = len(samples)
        mean = sum(samples) / n
        variance = sum((s - mean) ** 2 for s in samples) / n
        ordered = sorted(samples)
        return ResponseSummary(
            count=n,
            mean_ms=mean,
            std_ms=math.sqrt(variance),
            min_ms=ordered[0],
            max_ms=ordered[-1],
            p90_ms=ordered[min(n - 1, int(0.90 * n))],
            p99_ms=ordered[min(n - 1, int(0.99 * n))],
        )
