"""Response-time collection for completed user requests."""

from __future__ import annotations

import typing
from dataclasses import dataclass

from repro.metrics.stats import DistributionSummary


@dataclass
class ResponseSummary:
    """Aggregate response-time statistics over a measurement window.

    A thin wrapper over :class:`repro.metrics.stats.DistributionSummary`
    — the percentile math (nearest-rank, ``ceil(q*n)-1``) lives there,
    shared with every other statistic the experiments report.
    """

    count: int
    mean_ms: float
    std_ms: float
    min_ms: float
    max_ms: float
    p90_ms: float
    p99_ms: float

    @classmethod
    def empty(cls) -> "ResponseSummary":
        return cls(count=0, mean_ms=0.0, std_ms=0.0, min_ms=0.0, max_ms=0.0,
                   p90_ms=0.0, p99_ms=0.0)

    @classmethod
    def from_samples(cls, samples: typing.Sequence[float]) -> "ResponseSummary":
        summary = DistributionSummary.of(samples)
        return cls(
            count=summary.count,
            mean_ms=summary.mean,
            std_ms=summary.std,
            min_ms=summary.minimum,
            max_ms=summary.maximum,
            p90_ms=summary.p90,
            p99_ms=summary.p99,
        )


class ResponseRecorder:
    """Collects (completion time, response time, is_write) samples.

    Supports a warm-up boundary: samples completing before ``warmup_ms``
    are excluded from summaries, which removes the empty-queue
    transient at simulation start.
    """

    def __init__(self, warmup_ms: float = 0.0):
        self.warmup_ms = warmup_ms
        self._samples: typing.List[typing.Tuple[float, float, bool]] = []

    def record(self, complete_ms: float, response_ms: float, is_write: bool) -> None:
        self._samples.append((complete_ms, response_ms, is_write))

    def __len__(self) -> int:
        return len(self._samples)

    def responses(
        self,
        reads_only: bool = False,
        writes_only: bool = False,
        since_ms: typing.Optional[float] = None,
        until_ms: typing.Optional[float] = None,
    ) -> typing.List[float]:
        """Response times passing the warm-up, window, and kind filters."""
        lower = self.warmup_ms if since_ms is None else max(self.warmup_ms, since_ms)
        selected = []
        for complete, response, is_write in self._samples:
            if complete < lower:
                continue
            if until_ms is not None and complete > until_ms:
                continue
            if reads_only and is_write:
                continue
            if writes_only and not is_write:
                continue
            selected.append(response)
        return selected

    def summary(self, **filters) -> ResponseSummary:
        """Aggregate statistics over the filtered samples."""
        return ResponseSummary.from_samples(self.responses(**filters))
