"""The synthetic workload generator process."""

from __future__ import annotations

import typing
from dataclasses import dataclass

from repro.array.controller import ArrayController
from repro.sim.rng import RandomStreams
from repro.workload.base import WorkloadBase
from repro.workload.recorder import ResponseRecorder


@dataclass(frozen=True)
class WorkloadConfig:
    """Table 5-1(a) parameters.

    ``access_rate_per_s`` is in *user accesses per second* over the
    whole array; arrivals are Poisson (exponential interarrival). The
    address distribution is uniform over all mapped data units, aligned
    to the access size.
    """

    access_rate_per_s: float
    read_fraction: float
    access_units: int = 1  # 4 KB = one stripe unit in the paper's setup
    seed: int = 1992

    def __post_init__(self):
        if self.access_rate_per_s <= 0:
            raise ValueError("access rate must be positive")
        if not 0.0 <= self.read_fraction <= 1.0:
            raise ValueError("read fraction must be in [0, 1]")
        if self.access_units < 1:
            raise ValueError("accesses must cover at least one unit")

    @property
    def mean_interarrival_ms(self) -> float:
        return 1000.0 / self.access_rate_per_s


class SyntheticWorkload(WorkloadBase):
    """Open-loop Poisson request stream against an array controller.

    When the controller carries a data store, reads are verified against
    the expected logical contents (see :class:`WorkloadBase`).
    """

    def __init__(
        self,
        controller: ArrayController,
        config: WorkloadConfig,
        recorder: typing.Optional[ResponseRecorder] = None,
    ):
        super().__init__(controller, recorder=recorder)
        self.config = config
        streams = RandomStreams(config.seed)
        self._arrival_rng = streams.stream("arrivals")
        self._address_rng = streams.stream("addresses")
        self._kind_rng = streams.stream("read-write")
        self._value_rng = streams.stream("values")

    def run(self, duration_ms: typing.Optional[float] = None,
            max_requests: typing.Optional[int] = None):
        """Start generating; returns the generator process.

        Generation stops after ``duration_ms`` of simulated time or
        ``max_requests`` submissions, whichever comes first (at least
        one must be given), or when :meth:`stop` is called.
        """
        if duration_ms is None and max_requests is None:
            raise ValueError("give a duration, a request budget, or both")
        self._generator_done = False
        return self.controller.env.process(
            self._generate(duration_ms, max_requests), name="workload"
        )

    def _generate(self, duration_ms, max_requests):
        env = self.controller.env
        start = env.now
        # Hoisted loop invariants: the arrival rate never changes, and
        # expovariate's argument must be the identical float every draw
        # for the stream to stay reproducible.
        rate_per_ms = 1.0 / self.config.mean_interarrival_ms
        draw_interarrival = self._arrival_rng.expovariate
        while not self._stopped:
            if max_requests is not None and self.submitted >= max_requests:
                break
            delay = draw_interarrival(rate_per_ms)
            yield env.timeout(delay)
            if duration_ms is not None and env.now - start >= duration_ms:
                break
            if self._stopped:
                break
            self._submit_one()
        self._generator_done = True
        self._maybe_drain()

    def _submit_one(self) -> None:
        units = self.config.access_units
        max_start = self.controller.addressing.num_data_units - units
        aligned = (self._address_rng.randrange(max_start + 1) // units) * units
        is_write = self._kind_rng.random() >= self.config.read_fraction
        values = None
        if is_write and self.verify:
            values = [self._value_rng.getrandbits(64) for _ in range(units)]
        self._submit(aligned, is_write, units, values=values)
