"""Trace-driven workload replay.

The paper's raidSim could be fed arbitrary reference streams; this
module provides the equivalent: replay a recorded sequence of
timestamped accesses against the array. Traces can be built in code,
loaded from a simple text format, or captured from a synthetic run and
replayed bit-identically later — useful for regression experiments and
for studying specific pathological patterns (sequential floods, hot
spots) that the uniform generator cannot express.

Trace text format, one access per line (``#`` comments allowed)::

    <at_ms> <r|w> <logical_unit> [num_units]
"""

from __future__ import annotations

import typing
from dataclasses import dataclass

from repro.array.controller import ArrayController
from repro.sim.rng import RandomStreams
from repro.workload.base import WorkloadBase
from repro.workload.recorder import ResponseRecorder


@dataclass(frozen=True)
class TraceRecord:
    """One access in a trace."""

    at_ms: float
    is_write: bool
    logical_unit: int
    num_units: int = 1

    def __post_init__(self):
        if self.at_ms < 0:
            raise ValueError("trace timestamps must be non-negative")
        if self.num_units < 1:
            raise ValueError("accesses must cover at least one unit")

    def to_line(self) -> str:
        op = "w" if self.is_write else "r"
        return f"{self.at_ms:.3f} {op} {self.logical_unit} {self.num_units}"

    @classmethod
    def from_line(cls, line: str) -> "TraceRecord":
        fields = line.split()
        if len(fields) not in (3, 4):
            raise ValueError(f"malformed trace line: {line!r}")
        at_ms, op, unit = float(fields[0]), fields[1], int(fields[2])
        if op not in ("r", "w"):
            raise ValueError(f"trace op must be 'r' or 'w', got {op!r}")
        num_units = int(fields[3]) if len(fields) == 4 else 1
        return cls(at_ms=at_ms, is_write=op == "w", logical_unit=unit,
                   num_units=num_units)


def load_trace(path) -> typing.List[TraceRecord]:
    """Read a trace file, skipping blank lines and ``#`` comments."""
    records = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            records.append(TraceRecord.from_line(stripped))
    return records


def save_trace(path, records: typing.Iterable[TraceRecord]) -> None:
    """Write a trace file in the module's text format."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("# at_ms op logical_unit num_units\n")
        for record in records:
            handle.write(record.to_line() + "\n")


class TraceWorkload(WorkloadBase):
    """Replay a trace against the array in timestamp order."""

    def __init__(
        self,
        controller: ArrayController,
        records: typing.Sequence[TraceRecord],
        recorder: typing.Optional[ResponseRecorder] = None,
        seed: int = 1992,
    ):
        super().__init__(controller, recorder=recorder)
        self.records = sorted(records, key=lambda r: r.at_ms)
        for record in self.records:
            end = record.logical_unit + record.num_units
            if end > controller.addressing.num_data_units:
                raise ValueError(
                    f"trace access [{record.logical_unit}, {end}) exceeds the "
                    f"array's {controller.addressing.num_data_units} data units"
                )
        self._value_rng = RandomStreams(seed).stream("trace-values")

    def run(self):
        """Start the replay; returns the replayer process."""
        self._generator_done = False
        return self.controller.env.process(self._replay(), name="trace-workload")

    def _replay(self):
        env = self.controller.env
        start = env.now
        for record in self.records:
            if self._stopped:
                break
            due = start + record.at_ms
            if due > env.now:
                yield env.timeout(due - env.now)
            if self._stopped:  # stop may have landed while we waited
                break
            values = None
            if record.is_write and self.verify:
                values = [
                    self._value_rng.getrandbits(64) for _ in range(record.num_units)
                ]
            self._submit(record.logical_unit, record.is_write, record.num_units,
                         values=values)
        self._generator_done = True
        self._maybe_drain()
