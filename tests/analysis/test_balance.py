"""Unit tests for load-balance metrics."""

import pytest

from repro.analysis.balance import (
    balance_report,
    gini_coefficient,
    imbalance_ratio,
    spread,
)


class TestSpread:
    def test_balanced(self):
        assert spread([0.5, 0.5, 0.5]) == 0.0

    def test_unbalanced(self):
        assert spread([0.2, 0.8]) == pytest.approx(0.6)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            spread([])


class TestImbalanceRatio:
    def test_balanced_is_one(self):
        assert imbalance_ratio([0.4, 0.4, 0.4]) == pytest.approx(1.0)

    def test_hot_disk(self):
        # mean = 0.5, max = 1.0 -> ratio 2.
        assert imbalance_ratio([0.0, 1.0]) == pytest.approx(2.0)

    def test_idle_array(self):
        assert imbalance_ratio([0.0, 0.0]) == 1.0


class TestGini:
    def test_perfect_equality(self):
        assert gini_coefficient([0.3, 0.3, 0.3, 0.3]) == pytest.approx(0.0)

    def test_perfect_inequality_approaches_limit(self):
        # One disk does everything: Gini -> (n-1)/n.
        assert gini_coefficient([0, 0, 0, 1.0]) == pytest.approx(0.75)

    def test_scale_invariance(self):
        assert gini_coefficient([1, 2, 3]) == pytest.approx(
            gini_coefficient([10, 20, 30])
        )

    def test_all_zero(self):
        assert gini_coefficient([0.0, 0.0]) == 0.0


class TestReport:
    def test_all_metrics_present(self):
        report = balance_report([0.2, 0.4, 0.6])
        assert report["mean"] == pytest.approx(0.4)
        assert report["spread"] == pytest.approx(0.4)
        assert report["imbalance_ratio"] == pytest.approx(1.5)
        assert 0 < report["gini"] < 1
