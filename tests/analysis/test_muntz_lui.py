"""Unit tests for the Muntz & Lui analytic model."""

import pytest

from repro.analysis import MuntzLuiInputs, MuntzLuiModel
from repro.recon import BASELINE, REDIRECT, REDIRECT_PIGGYBACK, USER_WRITES


def make_inputs(g=4, rate=210.0, read_fraction=0.5, units=1000):
    return MuntzLuiInputs(
        num_disks=21,
        stripe_size=g,
        user_rate_per_s=rate,
        user_read_fraction=read_fraction,
        units_per_disk=units,
    )


class TestInputConversions:
    """Section 8.3's user→disk access conversions."""

    def test_rate_conversion(self):
        inputs = make_inputs(read_fraction=0.5, rate=210.0)
        assert inputs.disk_access_rate_per_s == pytest.approx((4 - 1.5) * 210)

    def test_read_fraction_conversion(self):
        inputs = make_inputs(read_fraction=0.5)
        assert inputs.disk_read_fraction == pytest.approx(1.5 / 2.5)

    def test_pure_reads_pass_through(self):
        inputs = make_inputs(read_fraction=1.0)
        assert inputs.disk_access_rate_per_s == pytest.approx(inputs.user_rate_per_s)
        assert inputs.disk_read_fraction == pytest.approx(1.0)

    def test_alpha(self):
        assert make_inputs(g=4).alpha == pytest.approx(0.15)
        assert make_inputs(g=21).alpha == pytest.approx(1.0)


class TestModelPredictions:
    def test_reconstruction_time_positive_and_finite(self):
        model = MuntzLuiModel(make_inputs())
        for algorithm in (BASELINE, USER_WRITES, REDIRECT, REDIRECT_PIGGYBACK):
            time_s = model.reconstruction_time_s(algorithm)
            assert 0 < time_s < float("inf")

    def test_lower_alpha_reconstructs_faster(self):
        times = [
            MuntzLuiModel(make_inputs(g=g)).reconstruction_time_s(USER_WRITES)
            for g in (4, 6, 10, 21)
        ]
        assert times == sorted(times)

    def test_higher_load_reconstructs_slower(self):
        # Use an alpha where survivors (not the replacement's mu
        # ceiling) are the binding constraint, and baseline so free
        # rebuilds do not mask the load effect.
        light = MuntzLuiModel(make_inputs(g=10, rate=105.0)).reconstruction_time_s(
            BASELINE
        )
        heavy = MuntzLuiModel(make_inputs(g=10, rate=210.0)).reconstruction_time_s(
            BASELINE
        )
        assert heavy > light

    def test_model_favors_redirection_as_the_paper_criticizes(self):
        # In the M&L world, redirecting reads off the survivors can only
        # help; Holland & Gibson show simulation disagrees at low alpha.
        model = MuntzLuiModel(make_inputs(g=21))
        assert model.reconstruction_time_s(REDIRECT) <= model.reconstruction_time_s(
            USER_WRITES
        )

    def test_saturated_array_never_finishes(self):
        model = MuntzLuiModel(make_inputs(rate=10_000.0))
        assert model.reconstruction_time_s(USER_WRITES) == float("inf")

    def test_minimum_possible_time(self):
        model = MuntzLuiModel(make_inputs(units=79_716))
        # The paper: over 1700 s to write a whole disk at 46 random/s.
        assert model.minimum_possible_time_s() > 1700

    def test_prediction_exceeds_idle_floor(self):
        # Baseline gets no free rebuilds, so it can never beat the
        # idle-array floor of one mu-priced write per unit.
        model = MuntzLuiModel(make_inputs())
        floor = model.minimum_possible_time_s()
        assert model.reconstruction_time_s(BASELINE) >= floor * (1 - 1e-9)

    def test_time_scales_linearly_with_units(self):
        small = MuntzLuiModel(make_inputs(units=1000)).reconstruction_time_s(USER_WRITES)
        large = MuntzLuiModel(make_inputs(units=2000)).reconstruction_time_s(USER_WRITES)
        assert large == pytest.approx(2 * small, rel=1e-6)

    def test_step_count_validation(self):
        with pytest.raises(ValueError):
            MuntzLuiModel(make_inputs(), steps=5)


class TestLoadEquations:
    def test_survivor_load_decreases_with_redirection_progress(self):
        model = MuntzLuiModel(make_inputs(g=10))
        early = model.survivor_load(REDIRECT, f=0.0)
        late = model.survivor_load(REDIRECT, f=1.0)
        assert late < early

    def test_replacement_load_grows_with_redirection_progress(self):
        model = MuntzLuiModel(make_inputs(g=10))
        assert model.replacement_load(REDIRECT, 1.0) > model.replacement_load(
            REDIRECT, 0.0
        )

    def test_baseline_replacement_load_is_zero(self):
        model = MuntzLuiModel(make_inputs())
        assert model.replacement_load(BASELINE, 0.5) == 0.0

    def test_free_rebuilds_only_for_writing_algorithms(self):
        model = MuntzLuiModel(make_inputs())
        assert model.free_rebuild_rate(BASELINE, 0.0) == 0.0
        assert model.free_rebuild_rate(USER_WRITES, 0.0) > 0.0
        assert model.free_rebuild_rate(REDIRECT_PIGGYBACK, 0.0) > model.free_rebuild_rate(
            USER_WRITES, 0.0
        )
