"""Unit tests for the queueing helpers."""

import pytest

from repro.analysis import mm1_response_time_ms, offered_load


class TestOfferedLoad:
    def test_basic(self):
        assert offered_load(20, 25.0) == pytest.approx(0.5)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            offered_load(-1, 10)


class TestMm1:
    def test_light_load_near_service_time(self):
        assert mm1_response_time_ms(1, 10.0) == pytest.approx(10.1, rel=0.01)

    def test_half_load_doubles_response(self):
        assert mm1_response_time_ms(50, 10.0) == pytest.approx(20.0)

    def test_saturation_rejected(self):
        with pytest.raises(ValueError, match="saturated"):
            mm1_response_time_ms(100, 10.0)
