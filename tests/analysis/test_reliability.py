"""Unit tests for the MTTDL reliability model."""

import math

import pytest

from repro.analysis.reliability import (
    HOURS_PER_YEAR,
    ReliabilityInputs,
    data_loss_probability,
    mttdl_hours,
    mttdl_improvement,
    mttdl_years,
    reliability_table,
)


def inputs(**overrides):
    base = dict(num_disks=21, disk_mttf_hours=150_000.0, repair_hours=1.0)
    base.update(overrides)
    return ReliabilityInputs(**base)


class TestMttdl:
    def test_formula(self):
        # MTTF^2 / (C (C-1) MTTR) with easy numbers.
        result = mttdl_hours(
            ReliabilityInputs(num_disks=2, disk_mttf_hours=100.0, repair_hours=1.0)
        )
        assert result == pytest.approx(100.0 ** 2 / (2 * 1 * 1))

    def test_years_conversion(self):
        value = inputs()
        assert mttdl_years(value) == pytest.approx(
            mttdl_hours(value) / HOURS_PER_YEAR
        )

    def test_inverse_in_repair_time(self):
        fast = mttdl_hours(inputs(repair_hours=0.5))
        slow = mttdl_hours(inputs(repair_hours=1.0))
        assert fast == pytest.approx(2 * slow)

    def test_more_disks_less_reliable(self):
        small = mttdl_hours(inputs(num_disks=10))
        large = mttdl_hours(inputs(num_disks=40))
        assert large < small

    def test_validation(self):
        with pytest.raises(ValueError):
            inputs(num_disks=1)
        with pytest.raises(ValueError):
            inputs(repair_hours=0)

    def test_two_fault_formula(self):
        # MTTF^3 / (C (C-1) (C-2) MTTR^2) with easy numbers.
        result = mttdl_hours(
            ReliabilityInputs(
                num_disks=3,
                disk_mttf_hours=100.0,
                repair_hours=2.0,
                fault_tolerance=2,
            )
        )
        assert result == pytest.approx(100.0 ** 3 / (3 * 2 * 1 * 2.0 ** 2))

    def test_second_syndrome_extends_the_chain_by_one_state(self):
        # Going from t=1 to t=2 multiplies MTTDL by MTTF / ((C-2) MTTR).
        single = mttdl_hours(inputs())
        dual = mttdl_hours(inputs(fault_tolerance=2))
        assert dual / single == pytest.approx(150_000.0 / (19 * 1.0))

    def test_fault_tolerance_validation(self):
        with pytest.raises(ValueError):
            inputs(fault_tolerance=0)
        with pytest.raises(ValueError):
            inputs(num_disks=3, fault_tolerance=3)


class TestLossProbability:
    def test_zero_mission(self):
        assert data_loss_probability(inputs(), 0.0) == 0.0

    def test_matches_exponential(self):
        value = inputs()
        t = 10 * HOURS_PER_YEAR
        expected = 1.0 - math.exp(-t / mttdl_hours(value))
        assert data_loss_probability(value, t) == pytest.approx(expected)

    def test_monotone_in_time(self):
        value = inputs()
        assert data_loss_probability(value, 1000.0) < data_loss_probability(
            value, 100_000.0
        )

    def test_negative_mission_rejected(self):
        with pytest.raises(ValueError):
            data_loss_probability(inputs(), -1.0)


class TestImprovement:
    def test_halving_repair_doubles_mttdl(self):
        assert mttdl_improvement(2.0, 1.0) == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            mttdl_improvement(0.0, 1.0)


class TestTable:
    def test_rows_and_ordering(self):
        rows = reliability_table({"alpha=0.15": 0.5, "raid5": 1.0})
        by_label = {r["label"]: r for r in rows}
        assert by_label["alpha=0.15"]["mttdl_years"] == pytest.approx(
            2 * by_label["raid5"]["mttdl_years"]
        )
        assert 0 < by_label["raid5"]["loss_probability_mission"] < 1
