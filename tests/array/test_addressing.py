"""Unit tests for array addressing and mapped capacity."""

import pytest

from repro.array import ArrayAddressing
from repro.designs import complete_design
from repro.disk import scaled_spec
from repro.layout import DeclusteredLayout, LeftSymmetricRaid5Layout, UnitAddress


def make_addressing(cylinders=10, stripe_size=4, num_disks=5):
    layout = DeclusteredLayout(complete_design(num_disks, stripe_size))
    return ArrayAddressing(layout, scaled_spec(cylinders))


class TestCapacity:
    def test_units_per_disk(self):
        addressing = make_addressing(cylinders=10)
        # 10 cylinders * 14 tracks * 48 sectors / 8 sectors per unit.
        assert addressing.units_per_disk == 840

    def test_whole_tables_only(self):
        addressing = make_addressing(cylinders=10)
        depth = addressing.layout.table_depth  # 16 for the (5,4) design
        assert addressing.mapped_units_per_disk == (840 // depth) * depth

    def test_stripe_and_data_unit_counts(self):
        addressing = make_addressing()
        layout = addressing.layout
        assert addressing.num_stripes == addressing.tables_per_disk * layout.stripes_per_table
        assert addressing.num_data_units == addressing.num_stripes * 3  # G-1

    def test_data_capacity_bytes(self):
        addressing = make_addressing()
        assert addressing.data_capacity_bytes == addressing.num_data_units * 4096

    def test_raid5_capacity(self):
        addressing = ArrayAddressing(LeftSymmetricRaid5Layout(5), scaled_spec(10))
        assert addressing.mapped_units_per_disk == 840  # depth 5 divides 840

    def test_disk_too_small_for_one_table_rejected(self):
        big_table_layout = DeclusteredLayout(complete_design(10, 4))  # depth 336
        with pytest.raises(ValueError, match="full layout table"):
            ArrayAddressing(big_table_layout, scaled_spec(2))


class TestConversion:
    def test_unit_to_sector(self):
        addressing = make_addressing()
        assert addressing.unit_to_sector(UnitAddress(0, 0)) == 0
        assert addressing.unit_to_sector(UnitAddress(0, 5)) == 40

    def test_unit_beyond_mapped_capacity_rejected(self):
        addressing = make_addressing()
        with pytest.raises(ValueError, match="mapped capacity"):
            addressing.unit_to_sector(UnitAddress(0, addressing.mapped_units_per_disk))

    def test_logical_bounds_checked(self):
        addressing = make_addressing()
        addressing.logical_unit_address(0)
        addressing.logical_unit_address(addressing.num_data_units - 1)
        with pytest.raises(ValueError):
            addressing.logical_unit_address(addressing.num_data_units)

    def test_non_sector_multiple_unit_rejected(self):
        layout = DeclusteredLayout(complete_design(5, 4))
        with pytest.raises(ValueError, match="whole"):
            ArrayAddressing(layout, scaled_spec(10), stripe_unit_bytes=1000)
