"""Degraded-mode behaviour: failed disk, no replacement installed."""

from repro.array.datastore import initial_data_pattern
from tests.conftest import build_array, total_disk_accesses


def find_logical_on_disk(array, disk):
    """A logical data unit living on the given disk."""
    for logical in range(array.addressing.num_data_units):
        if array.addressing.logical_unit_address(logical).disk == disk:
            return logical
    raise AssertionError(f"no data unit on disk {disk}")


def find_logical_with_parity_on_disk(array, disk):
    """A logical data unit (not itself on `disk`) whose parity is on `disk`."""
    layout = array.layout
    for logical in range(array.addressing.num_data_units):
        stripe = layout.stripe_of_logical(logical)
        if (
            layout.parity_unit(stripe).disk == disk
            and layout.logical_to_physical(logical).disk != disk
        ):
            return logical
    raise AssertionError(f"no stripe with parity on disk {disk}")


def find_logical_avoiding_disk(array, disk):
    """A logical unit whose whole stripe avoids `disk`."""
    layout = array.layout
    for logical in range(array.addressing.num_data_units):
        stripe = layout.stripe_of_logical(logical)
        if all(u.disk != disk for u in layout.stripe_units(stripe)):
            return logical
    raise AssertionError(f"every stripe touches disk {disk}")


class TestDegradedReads:
    def test_on_the_fly_read_costs_g_minus_1(self, small_array):
        controller = small_array.controller
        logical = find_logical_on_disk(small_array, 2)
        controller.fail_disk(2)
        request = small_array.run_op(controller.read(logical))
        assert total_disk_accesses(controller) == small_array.layout.stripe_size - 1
        assert request.paths == ["on-the-fly-read"]

    def test_on_the_fly_read_recovers_the_value(self, small_array):
        controller = small_array.controller
        logical = find_logical_on_disk(small_array, 2)
        address = small_array.addressing.logical_unit_address(logical)
        expected = initial_data_pattern(address.disk, address.offset)
        controller.fail_disk(2)
        request = small_array.run_op(controller.read(logical))
        assert request.read_values == [expected]

    def test_on_the_fly_read_after_write(self, small_array):
        controller = small_array.controller
        logical = find_logical_on_disk(small_array, 2)
        small_array.run_op(controller.write(logical, values=[0xBEEF]))
        controller.fail_disk(2)
        request = small_array.run_op(controller.read(logical))
        assert request.read_values == [0xBEEF]

    def test_surviving_reads_unaffected(self, small_array):
        controller = small_array.controller
        logical = find_logical_avoiding_disk(small_array, 2)
        controller.fail_disk(2)
        request = small_array.run_op(controller.read(logical))
        assert request.paths == ["read"]
        assert total_disk_accesses(controller) == 1


class TestDegradedWrites:
    def test_fold_write_costs_g_minus_2_reads_plus_parity_write(self, small_array):
        controller = small_array.controller
        logical = find_logical_on_disk(small_array, 2)
        controller.fail_disk(2)
        small_array.run_op(controller.write(logical, values=[0xF01D]))
        g = small_array.layout.stripe_size
        assert total_disk_accesses(controller) == (g - 2) + 1
        assert controller.stats.by_path == {"fold-write": 1}

    def test_folded_value_recoverable_on_the_fly(self, small_array):
        controller = small_array.controller
        logical = find_logical_on_disk(small_array, 2)
        controller.fail_disk(2)
        small_array.run_op(controller.write(logical, values=[0xF01D]))
        request = small_array.run_op(controller.read(logical))
        assert request.read_values == [0xF01D]

    def test_lost_parity_write_costs_one_access(self, small_array):
        # Section 7: "a user write induces only one, rather than four,
        # disk accesses" when the parity unit is lost.
        controller = small_array.controller
        logical = find_logical_with_parity_on_disk(small_array, 2)
        controller.fail_disk(2)
        small_array.run_op(controller.write(logical, values=[0xDA7A]))
        assert total_disk_accesses(controller) == 1
        assert controller.stats.by_path == {"data-only-write": 1}
        request = small_array.run_op(controller.read(logical))
        assert request.read_values == [0xDA7A]

    def test_unrelated_stripe_write_is_normal(self, small_array):
        controller = small_array.controller
        logical = find_logical_avoiding_disk(small_array, 2)
        controller.fail_disk(2)
        small_array.run_op(controller.write(logical, values=[0x1234]))
        assert controller.stats.by_path == {"rmw-write": 1}

    def test_degraded_large_write_falls_back_per_unit(self, small_array):
        controller = small_array.controller
        layout = small_array.layout
        # Find an aligned stripe touching disk 2.
        target = None
        for stripe in range(small_array.addressing.num_stripes):
            if any(u.disk == 2 for u in layout.stripe_units(stripe)):
                target = stripe
                break
        controller.fail_disk(2)
        base = target * layout.data_units_per_stripe
        small_array.run_op(controller.write(base, values=[1, 2, 3]))
        assert "large-write" not in controller.stats.by_path
        request = small_array.run_op(controller.read(base, num_units=3))
        assert request.read_values == [1, 2, 3]


class TestDegradedG3:
    def test_small_stripe_write_avoided_when_other_unit_lost(self):
        array = build_array(stripe_size=3)
        controller = array.controller
        layout = array.layout
        # Find a logical unit whose sibling data unit is on disk 2 and
        # whose own unit and parity are elsewhere.
        target = None
        for logical in range(array.addressing.num_data_units):
            stripe = layout.stripe_of_logical(logical)
            own = layout.logical_to_physical(logical)
            parity = layout.parity_unit(stripe)
            sibling = [
                u for u in layout.stripe_units(stripe) if u not in (own, parity)
            ][0]
            if sibling.disk == 2 and own.disk != 2 and parity.disk != 2:
                target = logical
                break
        controller.fail_disk(2)
        array.run_op(controller.write(target, values=[0xAB]))
        # Must fall back to a 4-access RMW rather than reading the lost sibling.
        assert controller.stats.by_path == {"rmw-write": 1}
        request = array.run_op(controller.read(target))
        assert request.read_values == [0xAB]


class TestPoisonDiscipline:
    def test_failed_disk_contents_are_poisoned(self, small_array):
        controller = small_array.controller
        controller.fail_disk(2)
        from repro.array.datastore import POISON

        assert controller.datastore.read_unit(2, 0) == int(POISON)

    def test_no_poison_leaks_into_degraded_reads(self, small_array):
        import random

        controller = small_array.controller
        rng = random.Random(11)
        controller.fail_disk(2)
        from repro.array.datastore import POISON

        for _ in range(30):
            logical = rng.randrange(small_array.addressing.num_data_units)
            request = small_array.run_op(controller.read(logical))
            assert request.read_values[0] != int(POISON)
