"""Fault-free striping driver behaviour: access counts and data flow.

The paper's driver issues exactly one access per user read and four
per user write (two pre-reads, two writes), three for G=3 stripes,
and G writes with no pre-reads for full-stripe aligned writes.
"""

import pytest

from repro.array.datastore import initial_data_pattern
from tests.conftest import build_array, total_disk_accesses


class TestReads:
    def test_read_costs_one_access(self, small_array):
        controller = small_array.controller
        small_array.run_op(controller.read(0))
        assert total_disk_accesses(controller) == 1
        assert controller.stats.by_path == {"read": 1}

    def test_read_returns_initial_pattern(self, small_array):
        controller = small_array.controller
        address = small_array.addressing.logical_unit_address(5)
        request = small_array.run_op(controller.read(5))
        assert request.read_values == [
            initial_data_pattern(address.disk, address.offset)
        ]

    def test_multi_unit_read(self, small_array):
        controller = small_array.controller
        request = small_array.run_op(controller.read(0, num_units=3))
        assert len(request.read_values) == 3
        assert total_disk_accesses(controller) == 3

    def test_out_of_range_rejected(self, small_array):
        controller = small_array.controller
        with pytest.raises(ValueError):
            controller.read(small_array.addressing.num_data_units)


class TestWrites:
    def test_write_costs_four_accesses(self, small_array):
        controller = small_array.controller
        small_array.run_op(controller.write(0, values=[0x1111]))
        assert total_disk_accesses(controller) == 4
        assert controller.stats.by_path == {"rmw-write": 1}

    def test_write_updates_data_and_parity(self, small_array):
        controller = small_array.controller
        layout = small_array.layout
        small_array.run_op(controller.write(0, values=[0x2222]))
        stripe = layout.stripe_of_logical(0)
        assert controller.datastore.stripe_is_consistent(stripe)
        request = small_array.run_op(controller.read(0))
        assert request.read_values == [0x2222]

    def test_write_read_write_read_sequence(self, small_array):
        controller = small_array.controller
        for value in (0xA, 0xB, 0xC):
            small_array.run_op(controller.write(7, values=[value]))
            request = small_array.run_op(controller.read(7))
            assert request.read_values == [value]

    def test_every_stripe_stays_consistent_under_random_writes(self, small_array):
        import random

        controller = small_array.controller
        rng = random.Random(5)
        for _ in range(50):
            unit = rng.randrange(small_array.addressing.num_data_units)
            small_array.run_op(controller.write(unit, values=[rng.getrandbits(64)]))
        for stripe in range(small_array.addressing.num_stripes):
            assert controller.datastore.stripe_is_consistent(stripe)


class TestSmallStripeOptimization:
    def test_g3_write_costs_three_accesses(self):
        array = build_array(stripe_size=3)
        controller = array.controller
        array.run_op(controller.write(0, values=[0x5555]))
        assert total_disk_accesses(controller) == 3
        assert controller.stats.by_path == {"small-stripe-write": 1}

    def test_g3_write_is_correct(self):
        array = build_array(stripe_size=3)
        controller = array.controller
        array.run_op(controller.write(0, values=[0x7777]))
        stripe = array.layout.stripe_of_logical(0)
        assert controller.datastore.stripe_is_consistent(stripe)
        request = array.run_op(controller.read(0))
        assert request.read_values == [0x7777]


class TestLargeWriteOptimization:
    def test_full_stripe_write_costs_g_accesses(self, small_array):
        controller = small_array.controller
        g_data = small_array.layout.data_units_per_stripe
        small_array.run_op(controller.write(0, values=[1, 2, 3][:g_data]))
        assert total_disk_accesses(controller) == small_array.layout.stripe_size
        assert controller.stats.by_path == {"large-write": 1}

    def test_full_stripe_write_is_correct(self, small_array):
        controller = small_array.controller
        small_array.run_op(controller.write(0, values=[10, 20, 30]))
        assert controller.datastore.stripe_is_consistent(0)
        request = small_array.run_op(controller.read(0, num_units=3))
        assert request.read_values == [10, 20, 30]

    def test_unaligned_write_falls_back_to_rmw(self, small_array):
        controller = small_array.controller
        small_array.run_op(controller.write(1, values=[5, 6, 7]))  # offset 1: unaligned
        assert "large-write" not in controller.stats.by_path
        assert controller.stats.by_path["rmw-write"] == 3

    def test_mixed_large_and_small_spans(self, small_array):
        controller = small_array.controller
        # Units 0..4: one aligned full stripe (0,1,2) + two RMWs (3,4).
        small_array.run_op(controller.write(0, values=[1, 2, 3, 4, 5]))
        assert controller.stats.by_path["large-write"] == 1
        assert controller.stats.by_path["rmw-write"] == 2
        request = small_array.run_op(controller.read(0, num_units=5))
        assert request.read_values == [1, 2, 3, 4, 5]


class TestAccounting:
    def test_user_counters(self, small_array):
        controller = small_array.controller
        small_array.run_op(controller.read(0))
        small_array.run_op(controller.write(1, values=[9]))
        assert controller.stats.user_reads == 1
        assert controller.stats.user_writes == 1

    def test_response_time_recorded(self, small_array):
        controller = small_array.controller
        request = small_array.run_op(controller.read(0))
        assert request.response_ms > 0
        assert request.complete_ms == small_array.env.now
