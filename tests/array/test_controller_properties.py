"""Property-based tests for striping-driver access-count invariants."""

import hypothesis.strategies as st
from hypothesis import given, settings

from tests.conftest import build_array, total_disk_accesses

#: (num_disks, stripe_size) pairs with catalog/complete designs that fit
#: a 10-cylinder test disk.
SHAPES = [(5, 3), (5, 4), (6, 3), (7, 3), (7, 4), (5, 5)]


class TestFaultFreeAccessCounts:
    @given(st.sampled_from(SHAPES), st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30, deadline=None)
    def test_read_costs_one_access_everywhere(self, shape, seed_unit):
        num_disks, g = shape
        array = build_array(num_disks=num_disks, stripe_size=g, with_datastore=False)
        unit = seed_unit % array.addressing.num_data_units
        array.run_op(array.controller.read(unit))
        assert total_disk_accesses(array.controller) == 1

    @given(st.sampled_from(SHAPES), st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30, deadline=None)
    def test_write_cost_formula(self, shape, seed_unit):
        num_disks, g = shape
        array = build_array(num_disks=num_disks, stripe_size=g, with_datastore=False)
        unit = seed_unit % array.addressing.num_data_units
        array.run_op(array.controller.write(unit, values=None, num_units=1))
        expected = 3 if g == 3 else 4
        assert total_disk_accesses(array.controller) == expected

    @given(st.sampled_from([s for s in SHAPES if s[1] > 3]))
    @settings(max_examples=len([s for s in SHAPES if s[1] > 3]), deadline=None)
    def test_full_stripe_write_costs_g(self, shape):
        num_disks, g = shape
        array = build_array(num_disks=num_disks, stripe_size=g, with_datastore=False)
        array.run_op(array.controller.write(0, num_units=g - 1))
        assert total_disk_accesses(array.controller) == g


class TestDegradedAccessCounts:
    @given(
        st.sampled_from([s for s in SHAPES if s[1] < s[0]]),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=30, deadline=None)
    def test_degraded_read_cost_is_one_or_g_minus_one(self, shape, seed_unit):
        num_disks, g = shape
        array = build_array(num_disks=num_disks, stripe_size=g, with_datastore=False)
        array.controller.fail_disk(0)
        unit = seed_unit % array.addressing.num_data_units
        address = array.addressing.logical_unit_address(unit)
        array.run_op(array.controller.read(unit))
        expected = g - 1 if address.disk == 0 else 1
        assert total_disk_accesses(array.controller) == expected

    @given(
        st.sampled_from([s for s in SHAPES if s[1] < s[0]]),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=30, deadline=None)
    def test_degraded_write_cost_never_exceeds_rmw(self, shape, seed_unit):
        # Section 7: degraded writes get *cheaper* (folding, lost
        # parity) or at worst fall back to the 4-access RMW (the G=3
        # optimization is unavailable when the sibling unit is lost).
        num_disks, g = shape
        array = build_array(num_disks=num_disks, stripe_size=g, with_datastore=False)
        array.controller.fail_disk(0)
        unit = seed_unit % array.addressing.num_data_units
        array.run_op(array.controller.write(unit, num_units=1))
        assert total_disk_accesses(array.controller) <= 4
