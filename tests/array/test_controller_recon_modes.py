"""Algorithm-specific routing during reconstruction.

These tests install a replacement and drive individual operations to
pin down exactly which paths each of the four algorithms takes, and
that the replacement disk sees user traffic only when the algorithm
says it should.
"""

from repro.disk.drive import KIND_USER
from repro.recon.algorithms import (
    BASELINE,
    REDIRECT,
    REDIRECT_PIGGYBACK,
    USER_WRITES,
)
from tests.array.test_controller_degraded import (
    find_logical_on_disk,
    find_logical_with_parity_on_disk,
)
from tests.conftest import build_array

FAILED = 2


def array_in_recon_mode(algorithm):
    array = build_array(algorithm=algorithm)
    array.controller.fail_disk(FAILED)
    array.controller.install_replacement()
    return array


def replacement_user_accesses(array):
    return array.controller.disks[FAILED].stats.completed_by_kind.get(KIND_USER, 0)


class TestBaseline:
    def test_unbuilt_write_folds(self):
        array = array_in_recon_mode(BASELINE)
        logical = find_logical_on_disk(array, FAILED)
        array.run_op(array.controller.write(logical, values=[1]))
        assert array.controller.stats.by_path == {"fold-write": 1}
        assert replacement_user_accesses(array) == 0

    def test_built_write_is_normal_rmw_on_replacement(self):
        # Rebuilt units are live for writes: anything else leaves the
        # replacement stale (or, if re-swept, risks never converging).
        array = array_in_recon_mode(BASELINE)
        logical = find_logical_on_disk(array, FAILED)
        offset = array.addressing.logical_unit_address(logical).offset
        array.controller.recon_status.mark_built(offset)
        array.run_op(array.controller.write(logical, values=[2]))
        assert array.controller.stats.by_path == {"rmw-write": 1}
        assert array.controller.recon_status.is_built(offset)

    def test_built_read_still_reconstructs_on_the_fly(self):
        array = array_in_recon_mode(BASELINE)
        logical = find_logical_on_disk(array, FAILED)
        offset = array.addressing.logical_unit_address(logical).offset
        array.controller.recon_status.mark_built(offset)
        request = array.run_op(array.controller.read(logical))
        assert request.paths == ["on-the-fly-read"]

    def test_built_parity_write_is_normal_rmw(self):
        array = array_in_recon_mode(BASELINE)
        logical = find_logical_with_parity_on_disk(array, FAILED)
        stripe = array.layout.stripe_of_logical(logical)
        parity_offset = array.layout.parity_unit(stripe).offset
        array.controller.recon_status.mark_built(parity_offset)
        array.run_op(array.controller.write(logical, values=[3]))
        assert array.controller.stats.by_path == {"rmw-write": 1}
        assert array.controller.recon_status.is_built(parity_offset)


class TestStrictBaseline:
    """The strict isolation variant folds even rebuilt units."""

    def test_built_write_folds_and_dirties(self):
        from repro.recon.algorithms import STRICT_BASELINE

        array = array_in_recon_mode(STRICT_BASELINE)
        logical = find_logical_on_disk(array, FAILED)
        offset = array.addressing.logical_unit_address(logical).offset
        array.controller.recon_status.mark_built(offset)
        array.run_op(array.controller.write(logical, values=[2]))
        assert array.controller.stats.by_path == {"fold-write": 1}
        assert not array.controller.recon_status.is_built(offset)
        assert array.controller.recon_status.dirtied_count == 1
        assert replacement_user_accesses(array) == 0

    def test_built_parity_write_dirties_parity(self):
        from repro.recon.algorithms import STRICT_BASELINE

        array = array_in_recon_mode(STRICT_BASELINE)
        logical = find_logical_with_parity_on_disk(array, FAILED)
        stripe = array.layout.stripe_of_logical(logical)
        parity_offset = array.layout.parity_unit(stripe).offset
        array.controller.recon_status.mark_built(parity_offset)
        array.run_op(array.controller.write(logical, values=[3]))
        assert array.controller.stats.by_path == {"data-only-write": 1}
        assert not array.controller.recon_status.is_built(parity_offset)

    def test_dirtied_unit_is_reswept_and_correct(self):
        from repro.recon import Reconstructor
        from repro.recon.algorithms import STRICT_BASELINE

        array = array_in_recon_mode(STRICT_BASELINE)
        controller = array.controller
        logical = find_logical_on_disk(array, FAILED)
        offset = array.addressing.logical_unit_address(logical).offset
        controller.recon_status.mark_built(offset)
        array.run_op(controller.write(logical, values=[0xD1247]))
        reconstructor = Reconstructor(controller, workers=2)
        array.env.run(until=reconstructor.start())
        assert reconstructor.result().resweeps >= 0
        request = array.run_op(controller.read(logical))
        assert request.read_values == [0xD1247]


class TestUserWrites:
    def test_unbuilt_write_goes_to_replacement(self):
        array = array_in_recon_mode(USER_WRITES)
        logical = find_logical_on_disk(array, FAILED)
        offset = array.addressing.logical_unit_address(logical).offset
        array.run_op(array.controller.write(logical, values=[7]))
        assert array.controller.stats.by_path == {"reconstruct-write": 1}
        assert array.controller.recon_status.is_built(offset)
        assert replacement_user_accesses(array) == 1

    def test_reconstruct_write_access_count(self):
        array = array_in_recon_mode(USER_WRITES)
        logical = find_logical_on_disk(array, FAILED)
        array.run_op(array.controller.write(logical, values=[7]))
        g = array.layout.stripe_size
        from tests.conftest import total_disk_accesses

        # G-2 peer reads + data write + parity write.
        assert total_disk_accesses(array.controller) == (g - 2) + 2

    def test_built_write_is_normal_rmw_on_replacement(self):
        array = array_in_recon_mode(USER_WRITES)
        logical = find_logical_on_disk(array, FAILED)
        array.run_op(array.controller.write(logical, values=[7]))
        array.run_op(array.controller.write(logical, values=[8]))
        assert array.controller.stats.by_path["rmw-write"] == 1

    def test_reads_still_on_the_fly_even_when_built(self):
        array = array_in_recon_mode(USER_WRITES)
        logical = find_logical_on_disk(array, FAILED)
        array.run_op(array.controller.write(logical, values=[7]))  # builds it
        request = array.run_op(array.controller.read(logical))
        assert request.paths == ["on-the-fly-read"]
        assert request.read_values == [7]


class TestRedirect:
    def test_built_read_is_redirected(self):
        array = array_in_recon_mode(REDIRECT)
        logical = find_logical_on_disk(array, FAILED)
        array.run_op(array.controller.write(logical, values=[9]))  # builds it
        request = array.run_op(array.controller.read(logical))
        assert request.paths == ["redirected-read"]
        assert request.read_values == [9]

    def test_unbuilt_read_is_on_the_fly(self):
        array = array_in_recon_mode(REDIRECT)
        logical = find_logical_on_disk(array, FAILED)
        request = array.run_op(array.controller.read(logical))
        assert request.paths == ["on-the-fly-read"]

    def test_no_piggyback_write_happens(self):
        array = array_in_recon_mode(REDIRECT)
        logical = find_logical_on_disk(array, FAILED)
        offset = array.addressing.logical_unit_address(logical).offset
        array.run_op(array.controller.read(logical))
        assert not array.controller.recon_status.is_built(offset)
        assert array.controller.stats.piggyback_writes == 0


class TestRedirectPiggyback:
    def test_on_the_fly_read_piggybacks_to_replacement(self):
        array = array_in_recon_mode(REDIRECT_PIGGYBACK)
        logical = find_logical_on_disk(array, FAILED)
        offset = array.addressing.logical_unit_address(logical).offset
        array.run_op(array.controller.read(logical))
        array.env.run()  # let the piggyback write finish
        assert array.controller.recon_status.is_built(offset)
        assert array.controller.stats.piggyback_writes == 1

    def test_piggybacked_unit_reads_correctly_from_replacement(self):
        array = array_in_recon_mode(REDIRECT_PIGGYBACK)
        logical = find_logical_on_disk(array, FAILED)
        address = array.addressing.logical_unit_address(logical)
        from repro.array.datastore import initial_data_pattern

        expected = initial_data_pattern(address.disk, address.offset)
        array.run_op(array.controller.read(logical))
        array.env.run()
        request = array.run_op(array.controller.read(logical))
        assert request.paths == ["redirected-read"]
        assert request.read_values == [expected]

    def test_second_read_does_not_piggyback_again(self):
        array = array_in_recon_mode(REDIRECT_PIGGYBACK)
        logical = find_logical_on_disk(array, FAILED)
        array.run_op(array.controller.read(logical))
        array.env.run()
        array.run_op(array.controller.read(logical))
        assert array.controller.stats.piggyback_writes == 1
