"""Graceful data loss, foreground repair, and hard-error escalation.

These are the controller-level contracts of the fault-injection
subsystem: a second concurrent failure is *recorded* rather than
raised when fault injection is on, requests touching destroyed
stripes take the accounted ``data-loss`` path, latent media errors
are repaired in-line from parity, and a disk that exhausts its
retries too often is escalated to a whole-disk failure.
"""

import pytest

from repro.array import DataLossError
from repro.array.datastore import initial_data_pattern
from repro.faults.log import (
    DATA_LOSS,
    DATA_LOSS_ACCESS,
    ESCALATION,
    FOREGROUND_REPAIR,
    MEDIA_ERROR,
    RETRY,
    RETRY_EXHAUSTED,
)
from repro.faults.profile import FaultProfile
from repro.faults.retry import RetryPolicy
from tests.conftest import build_array

QUIESCENT = FaultProfile(seed=3)  # fault paths armed, no stochastic sources


def find_logical_touching_both(array, disk_a, disk_b):
    """A logical data unit whose stripe has units on both given disks."""
    layout = array.layout
    for logical in range(array.addressing.num_data_units):
        stripe = layout.stripe_of_logical(logical)
        disks = {u.disk for u in layout.stripe_units(stripe)}
        if disk_a in disks and disk_b in disks:
            return logical
    raise AssertionError(f"no stripe touches both disks {disk_a} and {disk_b}")


def find_live_logical_singly_exposed(array, disk_a, disk_b):
    """A logical unit on a live disk whose stripe touches at most one of
    the two given disks (so one XOR recovery still covers it)."""
    layout = array.layout
    for logical in range(array.addressing.num_data_units):
        stripe = layout.stripe_of_logical(logical)
        disks = {u.disk for u in layout.stripe_units(stripe)}
        own = layout.logical_to_physical(logical).disk
        if own not in (disk_a, disk_b) and not {disk_a, disk_b} <= disks:
            return logical
    raise AssertionError(f"every stripe touches both disks {disk_a} and {disk_b}")


class TestGracefulDoubleFailure:
    def test_without_opt_in_the_second_failure_still_raises(self, small_array):
        small_array.controller.fail_disk(1)
        with pytest.raises(DataLossError, match="second failure") as exc_info:
            small_array.controller.fail_disk(2)
        assert exc_info.value.failed_disks == (1, 2)

    def test_data_loss_error_is_a_runtime_error(self):
        # Source compatibility: pre-existing callers catch RuntimeError.
        assert issubclass(DataLossError, RuntimeError)

    def test_opt_in_records_instead_of_raising(self):
        array = build_array(fault_profile=QUIESCENT)
        array.controller.fail_disk(1)
        array.controller.fail_disk(2)  # must not raise
        faults = array.controller.faults
        assert faults.data_lost
        assert not faults.fault_free
        assert faults.failed_disk == 1
        assert faults.lost_disks == {2}
        [event] = faults.data_loss_events
        assert event.disk == 2
        assert event.all_failed_disks == (1, 2)
        assert len(event.exposed_stripes) > 0
        assert array.controller.fault_log.count(DATA_LOSS) == 1

    def test_exposed_stripes_are_exactly_the_double_hits(self):
        array = build_array(fault_profile=QUIESCENT)
        array.controller.fail_disk(1)
        array.controller.fail_disk(2)
        [event] = array.controller.faults.data_loss_events
        expected = [
            stripe
            for stripe in range(array.addressing.num_stripes)
            if {1, 2}
            <= {u.disk for u in array.layout.stripe_units(stripe)}
        ]
        assert list(event.exposed_stripes) == expected


class TestDataLossAccounting:
    def build_lost_array(self):
        array = build_array(fault_profile=QUIESCENT)
        array.controller.fail_disk(1)
        array.controller.fail_disk(2)
        return array

    def test_read_of_a_doubly_exposed_stripe_is_accounted(self):
        array = self.build_lost_array()
        logical = find_logical_touching_both(array, 1, 2)
        request = array.run_op(array.controller.read(logical))
        assert request.data_lost
        assert request.lost_units == [logical]
        assert request.paths == ["data-loss"]
        assert array.controller.fault_log.count(DATA_LOSS_ACCESS) == 1

    def test_write_to_a_doubly_exposed_stripe_is_accounted(self):
        array = self.build_lost_array()
        logical = find_logical_touching_both(array, 1, 2)
        request = array.run_op(array.controller.write(logical, values=[0xDEAD]))
        assert request.data_lost
        assert request.paths == ["data-loss"]

    def test_surviving_stripes_still_serve_reads(self):
        array = self.build_lost_array()
        logical = find_live_logical_singly_exposed(array, 1, 2)
        address = array.addressing.logical_unit_address(logical)
        request = array.run_op(array.controller.read(logical))
        assert not request.data_lost
        assert request.paths == ["read"]
        assert request.read_values == [
            initial_data_pattern(address.disk, address.offset)
        ]


class TestForegroundRepair:
    def test_latent_read_is_repaired_from_parity(self):
        array = build_array(fault_profile=QUIESCENT)
        controller = array.controller
        logical = 0
        address = array.addressing.logical_unit_address(logical)
        sector = array.addressing.unit_to_sector(address)
        state = controller.disks[address.disk].fault_state
        state.add_latent(sector, array.addressing.sectors_per_unit)
        request = array.run_op(controller.read(logical))
        assert request.paths == ["repaired-read"]
        assert request.read_values == [
            initial_data_pattern(address.disk, address.offset)
        ]
        # The rewrite remapped the latent extent: the unit reads
        # cleanly (and cheaply) from then on.
        assert state.latent_extents == 0
        assert controller.fault_log.count(MEDIA_ERROR) == 1
        assert controller.fault_log.count(FOREGROUND_REPAIR) == 1
        again = array.run_op(controller.read(logical))
        assert again.paths == ["read"]


class TestRetryAndEscalation:
    def test_retries_back_off_then_give_up(self):
        profile = FaultProfile(transient_error_prob=1.0, escalation_threshold=100,
                               seed=3)
        policy = RetryPolicy(max_retries=3, base_delay_ms=0.5, backoff_factor=2.0)
        array = build_array(fault_profile=profile, retry_policy=policy)
        logical = 0
        target = array.addressing.logical_unit_address(logical)
        array.run_op(array.controller.read(logical))
        log = array.controller.fault_log
        target_retries = [e for e in log.of_kind(RETRY) if e.disk == target.disk]
        assert len(target_retries) == policy.max_retries
        assert "backoff 2.00 ms" in target_retries[-1].detail
        exhausted = [
            e for e in log.of_kind(RETRY_EXHAUSTED) if e.disk == target.disk
        ]
        assert len(exhausted) == 1

    def test_exhausted_retries_escalate_to_disk_failure(self):
        # Satellite contract: a disk whose accesses keep timing out
        # crosses the hard-error threshold and is declared failed.
        profile = FaultProfile(transient_error_prob=1.0, escalation_threshold=1,
                               seed=3)
        policy = RetryPolicy(max_retries=0)
        array = build_array(fault_profile=profile, retry_policy=policy)
        logical = 0
        target = array.addressing.logical_unit_address(logical)
        array.run_op(array.controller.read(logical))  # must not raise
        log = array.controller.fault_log
        assert log.count(ESCALATION) >= 1
        assert log.of_kind(ESCALATION)[0].disk == target.disk
        assert not array.controller.faults.fault_free

    def test_escalation_routes_through_the_failure_callback(self):
        profile = FaultProfile(transient_error_prob=1.0, escalation_threshold=1,
                               seed=3)
        escalated = []
        array = build_array(fault_profile=profile,
                            retry_policy=RetryPolicy(max_retries=0))
        array.controller.on_disk_failure = escalated.append
        logical = 0
        target = array.addressing.logical_unit_address(logical)
        array.run_op(array.controller.read(logical))
        assert target.disk in escalated
        # The callback owns the failure decision: the controller did
        # not fail the disk itself.
        assert array.controller.faults.fault_free
