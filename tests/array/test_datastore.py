"""Unit tests for the data-integrity store."""

import pytest

from repro.array import ArrayAddressing, DataStore
from repro.array.datastore import POISON, initial_data_pattern
from repro.designs import complete_design
from repro.disk import scaled_spec
from repro.layout import DeclusteredLayout


@pytest.fixture
def store():
    layout = DeclusteredLayout(complete_design(5, 4))
    addressing = ArrayAddressing(layout, scaled_spec(3))
    return DataStore(addressing)


class TestInitialization:
    def test_every_stripe_starts_consistent(self, store):
        for stripe in range(store.addressing.num_stripes):
            assert store.stripe_is_consistent(stripe)

    def test_data_units_hold_the_pattern(self, store):
        layout = store.addressing.layout
        address = layout.data_unit(0, 0)
        assert store.read_unit(address.disk, address.offset) == initial_data_pattern(
            address.disk, address.offset
        )

    def test_pattern_is_position_dependent(self):
        assert initial_data_pattern(0, 0) != initial_data_pattern(0, 1)
        assert initial_data_pattern(0, 0) != initial_data_pattern(1, 0)


class TestMutation:
    def test_write_then_read(self, store):
        store.write_unit(2, 5, 0xABCD)
        assert store.read_unit(2, 5) == 0xABCD

    def test_write_wraps_to_64_bits(self, store):
        store.write_unit(0, 0, (1 << 64) + 5)
        assert store.read_unit(0, 0) == 5

    def test_write_breaks_consistency_until_parity_recomputed(self, store):
        layout = store.addressing.layout
        address = layout.data_unit(0, 0)
        store.write_unit(address.disk, address.offset, 0xFEED)
        assert not store.stripe_is_consistent(0)
        store.recompute_parity(0)
        assert store.stripe_is_consistent(0)

    def test_parity_value_equals_xor_of_data(self, store):
        expected = 0
        for value in store.stripe_data_values(7):
            expected ^= value
        assert store.parity_value(7) == expected


class TestFailureHandling:
    def test_poison_disk(self, store):
        store.poison_disk(1)
        assert store.read_unit(1, 0) == int(POISON)
        assert store.read_unit(1, store.addressing.mapped_units_per_disk - 1) == int(POISON)

    def test_clear_disk(self, store):
        store.poison_disk(1)
        store.clear_disk(1)
        assert store.read_unit(1, 0) == 0

    def test_other_disks_untouched_by_poison(self, store):
        before = store.read_unit(0, 0)
        store.poison_disk(1)
        assert store.read_unit(0, 0) == before
