"""Dual-syndrome (P+Q) controller paths: degraded reads and writes.

Exercises the RAID-6 machinery end to end against the datastore: a
dual array must serve every data unit bit-exactly with up to two
concurrent disk failures, keep both checks consistent through every
write path, and reject (or gracefully account) a third failure.
"""

import pytest

from repro.array import syndromes as gf
from repro.array.datastore import initial_data_pattern
from repro.array.faults import DataLossError
from repro.recon import REDIRECT_PIGGYBACK
from tests.conftest import build_dual_array


def all_stripes_consistent(array):
    store = array.controller.datastore
    return all(
        store.stripe_is_consistent(stripe)
        for stripe in range(array.addressing.num_stripes)
    )


def find_logical_on_disk(array, disk):
    """A logical unit whose data lives on ``disk``."""
    for logical in range(array.addressing.num_data_units):
        if array.addressing.logical_unit_address(logical).disk == disk:
            return logical
    raise AssertionError(f"no data units on disk {disk}")


def read_all_data(array):
    controller = array.controller
    done = controller.read(0, num_units=array.addressing.num_data_units)
    return array.env.run(until=done)


class TestFaultFreeDual:
    def test_initial_store_is_consistent(self, dual_array):
        assert all_stripes_consistent(dual_array)

    def test_reads_take_the_normal_path(self, dual_array):
        request = read_all_data(dual_array)
        assert set(request.paths) == {"read"}
        assert not request.lost_units

    def test_single_unit_write_is_pq_rmw(self, dual_array):
        request = dual_array.run_op(dual_array.controller.write(0, values=[0xAB]))
        assert request.paths == ["pq-rmw-write"]
        assert all_stripes_consistent(dual_array)

    def test_aligned_write_takes_large_write_path(self, dual_array):
        g_data = dual_array.layout.data_units_per_stripe
        values = list(range(1, g_data + 1))
        request = dual_array.run_op(dual_array.controller.write(0, values=values))
        assert request.paths == ["large-write"]
        assert all_stripes_consistent(dual_array)

    def test_random_writes_keep_both_checks_consistent(self, dual_array):
        controller = dual_array.controller
        num_units = dual_array.addressing.num_data_units
        for step in range(40):
            logical = (step * 17) % num_units
            dual_array.run_op(controller.write(logical, values=[step * 0x1234567]))
        assert all_stripes_consistent(dual_array)


class TestSingleDegradedDual:
    def test_failed_data_decodes_on_the_fly(self, dual_array):
        controller = dual_array.controller
        controller.fail_disk(2)
        request = read_all_data(dual_array)
        assert not request.lost_units
        assert "on-the-fly-read" in request.paths
        assert "double-degraded-read" not in request.paths
        for logical in range(dual_array.addressing.num_data_units):
            assert request.read_values[logical] == initial_data_pattern(
                *astuple(dual_array, logical)
            )

    def test_degraded_writes_fold_into_survivors(self, dual_array):
        controller = dual_array.controller
        failed = 2
        controller.fail_disk(failed)
        logical = find_logical_on_disk(dual_array, failed)
        request = dual_array.run_op(controller.write(logical, values=[0x77]))
        assert request.paths == ["pq-fold-write"]
        # The folded value decodes back out of the survivors.
        read = dual_array.run_op(controller.read(logical))
        assert read.read_values == [0x77]

    def test_write_with_dead_check_is_pq_degraded(self, dual_array):
        controller = dual_array.controller
        layout = dual_array.layout
        # Find a logical unit whose stripe has its P on the failed disk.
        failed = 3
        controller.fail_disk(failed)
        target = None
        for logical in range(dual_array.addressing.num_data_units):
            stripe = layout.stripe_of_logical(logical)
            dead_checks = {layout.parity_unit(stripe).disk, layout.q_unit(stripe).disk}
            if (
                failed in dead_checks
                and dual_array.addressing.logical_unit_address(logical).disk != failed
            ):
                target = logical
                break
        assert target is not None
        request = dual_array.run_op(controller.write(target, values=[0x55]))
        assert request.paths == ["pq-degraded-write"]
        read = dual_array.run_op(controller.read(target))
        assert read.read_values == [0x55]


class TestDoubleDegradedDual:
    def test_all_data_survives_two_failures(self, dual_array):
        controller = dual_array.controller
        controller.fail_disk(1)
        controller.fail_disk(5)
        request = read_all_data(dual_array)
        assert not request.lost_units
        assert "double-degraded-read" in request.paths
        for logical in range(dual_array.addressing.num_data_units):
            assert request.read_values[logical] == initial_data_pattern(
                *astuple(dual_array, logical)
            )

    def test_writes_survive_two_failures(self, dual_array):
        controller = dual_array.controller
        controller.fail_disk(1)
        controller.fail_disk(5)
        num_units = dual_array.addressing.num_data_units
        for logical in range(num_units):
            dual_array.run_op(controller.write(logical, values=[logical * 3 + 1]))
        request = read_all_data(dual_array)
        assert not request.lost_units
        assert request.read_values == [
            logical * 3 + 1 for logical in range(num_units)
        ]

    def test_third_failure_raises_without_opt_in(self, dual_array):
        controller = dual_array.controller
        controller.fail_disk(1)
        controller.fail_disk(5)
        with pytest.raises(DataLossError):
            controller.fail_disk(6)

    def test_double_failure_on_cyclic_raid6(self):
        array = build_dual_array(num_disks=6)
        array.controller.fail_disk(0)
        array.controller.fail_disk(3)
        request = read_all_data(array)
        assert not request.lost_units


class TestDualReplacementPaths:
    def test_reconstruct_write_lands_on_replacement(self, dual_array):
        controller = dual_array.controller
        controller.algorithm = REDIRECT_PIGGYBACK
        failed = 2
        controller.fail_disk(failed)
        controller.install_replacement(failed)
        logical = find_logical_on_disk(dual_array, failed)
        request = dual_array.run_op(controller.write(logical, values=[0x99]))
        assert request.paths == ["pq-reconstruct-write"]
        address = dual_array.addressing.logical_unit_address(logical)
        assert controller.recon_statuses[failed].is_built(address.offset)
        read = dual_array.run_op(controller.read(logical))
        assert read.paths == ["redirected-read"]
        assert read.read_values == [0x99]

    def test_piggyback_populates_replacement(self, dual_array):
        controller = dual_array.controller
        controller.algorithm = REDIRECT_PIGGYBACK
        failed = 2
        controller.fail_disk(failed)
        controller.install_replacement(failed)
        logical = find_logical_on_disk(dual_array, failed)
        first = dual_array.run_op(controller.read(logical))
        assert first.paths == ["on-the-fly-read"]
        assert controller.stats.piggyback_writes == 1
        # Let the piggyback write (spawned holding the stripe lock) land.
        dual_array.env.run(until=dual_array.env.timeout(1_000.0))
        second = dual_array.run_op(controller.read(logical))
        assert second.paths == ["redirected-read"]

    def test_q_unit_syndrome_matches_gf_arithmetic(self, dual_array):
        store = dual_array.controller.datastore
        for stripe in range(dual_array.addressing.num_stripes):
            data = store.stripe_data_values(stripe)
            assert store.q_value(stripe) == gf.q_of(data)
            assert store.parity_value(stripe) == gf.p_of(data)


def astuple(array, logical):
    address = array.addressing.logical_unit_address(logical)
    return address.disk, address.offset
