"""Failure injected while requests are in flight.

An operation planned before the failure may touch the now-dead disk;
the driver times the access on the dead spindle, counts it, and keeps
parity arithmetic consistent because its pre-read values were sampled
before the failure poisoned the store.
"""

from repro.recon import Reconstructor
from tests.array.test_controller_degraded import find_logical_on_disk
from tests.conftest import build_array

FAILED = 2


class TestStraddlingRequests:
    def test_in_flight_write_counts_straddled_access(self):
        array = build_array()
        controller = array.controller
        logical = find_logical_on_disk(array, FAILED)
        done = controller.write(logical, values=[0x5117])
        # Let the pre-reads start, then fail the disk mid-operation.
        array.env.run(until=1.0)
        controller.fail_disk(FAILED)
        array.env.run(until=done)
        assert controller.stats.straddled_accesses >= 1

    def test_parity_stays_recoverable_after_straddle(self):
        array = build_array()
        controller = array.controller
        logical = find_logical_on_disk(array, FAILED)
        done = controller.write(logical, values=[0x5117])
        array.env.run(until=1.0)
        controller.fail_disk(FAILED)
        array.env.run(until=done)
        # The straddled write's data landed on the dead disk and is
        # lost, but the parity update used pre-failure values, so
        # on-the-fly reconstruction returns the *new* value.
        request = array.run_op(controller.read(logical))
        assert request.read_values == [0x5117]

    def test_reconstruction_after_straddle_is_consistent(self):
        array = build_array()
        controller = array.controller
        logical = find_logical_on_disk(array, FAILED)
        done = controller.write(logical, values=[0xABCD])
        array.env.run(until=1.0)
        controller.fail_disk(FAILED)
        array.env.run(until=done)
        controller.install_replacement()
        array.env.run(until=Reconstructor(controller, workers=2).start())
        request = array.run_op(controller.read(logical))
        assert request.read_values == [0xABCD]
        store = controller.datastore
        for stripe in range(array.addressing.num_stripes):
            assert store.stripe_is_consistent(stripe)

    def test_quiescent_failure_has_no_straddles(self):
        array = build_array()
        controller = array.controller
        array.run_op(controller.write(0, values=[1]))
        controller.fail_disk(FAILED)
        array.run_op(controller.read(0))
        assert controller.stats.straddled_accesses == 0
