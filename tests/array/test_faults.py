"""Unit tests for the fault state machine."""

import pytest

from repro.array import ArrayFaults, DiskMode
from repro.array.faults import DataLossError


class TestFaultTransitions:
    def test_initially_fault_free(self):
        faults = ArrayFaults(5)
        assert faults.fault_free
        assert all(faults.mode_of(d) is DiskMode.OK for d in range(5))

    def test_fail_marks_disk(self):
        faults = ArrayFaults(5)
        faults.fail(2)
        assert not faults.fault_free
        assert faults.mode_of(2) is DiskMode.FAILED
        assert faults.mode_of(1) is DiskMode.OK

    def test_replacement_transitions_to_reconstructing(self):
        faults = ArrayFaults(5)
        faults.fail(2)
        faults.install_replacement()
        assert faults.mode_of(2) is DiskMode.RECONSTRUCTING

    def test_repair_complete_restores_fault_free(self):
        faults = ArrayFaults(5)
        faults.fail(2)
        faults.install_replacement()
        faults.repair_complete()
        assert faults.fault_free

    def test_second_failure_rejected(self):
        faults = ArrayFaults(5)
        faults.fail(2)
        with pytest.raises(RuntimeError, match="second failure"):
            faults.fail(3)

    def test_failure_cycle_can_repeat_after_repair(self):
        faults = ArrayFaults(5)
        faults.fail(2)
        faults.install_replacement()
        faults.repair_complete()
        faults.fail(4)
        assert faults.failed_disk == 4

    def test_replacement_without_failure_rejected(self):
        with pytest.raises(RuntimeError):
            ArrayFaults(5).install_replacement()

    def test_double_replacement_rejected(self):
        faults = ArrayFaults(5)
        faults.fail(0)
        faults.install_replacement()
        with pytest.raises(RuntimeError):
            faults.install_replacement()

    def test_repair_without_replacement_rejected(self):
        faults = ArrayFaults(5)
        faults.fail(0)
        with pytest.raises(RuntimeError):
            faults.repair_complete()

    def test_out_of_range_disk_rejected(self):
        with pytest.raises(ValueError):
            ArrayFaults(5).fail(5)


class TestDeterministicOrdering:
    """Regression tests pinning the sorted-tuple idiom (simlint DET004).

    Failure records are built from sets; cache keys and result documents
    embed them, so their ordering must not depend on insertion order.
    """

    def test_concurrent_failures_sorted_regardless_of_failure_order(self):
        faults = ArrayFaults(8)
        faults.fail(5)
        faults.fail(1, allow_data_loss=True)
        event = faults.fail(6, allow_data_loss=True)
        assert event.concurrent_failures == (1, 5)
        assert event.all_failed_disks == (1, 5, 6)

    def test_reversed_failure_order_yields_identical_tuples(self):
        forward = ArrayFaults(8)
        forward.fail(1)
        forward.fail(5, allow_data_loss=True)
        backward = ArrayFaults(8)
        backward.fail(5)
        backward.fail(1, allow_data_loss=True)
        next_forward = forward.fail(3, allow_data_loss=True)
        next_backward = backward.fail(3, allow_data_loss=True)
        assert next_forward.concurrent_failures == (1, 5)
        assert (
            next_forward.concurrent_failures
            == next_backward.concurrent_failures
        )
        assert next_forward.all_failed_disks == next_backward.all_failed_disks

    def test_data_loss_error_lists_disks_sorted(self):
        faults = ArrayFaults(8)
        faults.fail(6)
        with pytest.raises(DataLossError) as exc_info:
            faults.fail(2)
        assert exc_info.value.failed_disks == (6, 2)
        # The concurrent (already-down) prefix is sorted; the new disk
        # is appended last so callers can tell which failure lost data.
        assert exc_info.value.failed_disks[:-1] == tuple(
            sorted(exc_info.value.failed_disks[:-1])
        )
