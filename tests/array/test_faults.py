"""Unit tests for the fault state machine."""

import pytest

from repro.array import ArrayFaults, DiskMode


class TestFaultTransitions:
    def test_initially_fault_free(self):
        faults = ArrayFaults(5)
        assert faults.fault_free
        assert all(faults.mode_of(d) is DiskMode.OK for d in range(5))

    def test_fail_marks_disk(self):
        faults = ArrayFaults(5)
        faults.fail(2)
        assert not faults.fault_free
        assert faults.mode_of(2) is DiskMode.FAILED
        assert faults.mode_of(1) is DiskMode.OK

    def test_replacement_transitions_to_reconstructing(self):
        faults = ArrayFaults(5)
        faults.fail(2)
        faults.install_replacement()
        assert faults.mode_of(2) is DiskMode.RECONSTRUCTING

    def test_repair_complete_restores_fault_free(self):
        faults = ArrayFaults(5)
        faults.fail(2)
        faults.install_replacement()
        faults.repair_complete()
        assert faults.fault_free

    def test_second_failure_rejected(self):
        faults = ArrayFaults(5)
        faults.fail(2)
        with pytest.raises(RuntimeError, match="second failure"):
            faults.fail(3)

    def test_failure_cycle_can_repeat_after_repair(self):
        faults = ArrayFaults(5)
        faults.fail(2)
        faults.install_replacement()
        faults.repair_complete()
        faults.fail(4)
        assert faults.failed_disk == 4

    def test_replacement_without_failure_rejected(self):
        with pytest.raises(RuntimeError):
            ArrayFaults(5).install_replacement()

    def test_double_replacement_rejected(self):
        faults = ArrayFaults(5)
        faults.fail(0)
        faults.install_replacement()
        with pytest.raises(RuntimeError):
            faults.install_replacement()

    def test_repair_without_replacement_rejected(self):
        faults = ArrayFaults(5)
        faults.fail(0)
        with pytest.raises(RuntimeError):
            faults.repair_complete()

    def test_out_of_range_disk_rejected(self):
        with pytest.raises(ValueError):
            ArrayFaults(5).fail(5)
