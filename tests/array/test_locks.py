"""Unit tests for per-stripe locks.

The discipline tests (release on exception, FIFO grants, no double
release) are the runtime counterpart of simlint's LOCK001 rule: the
lint proves the try/finally is *written*, these prove it *works*.
"""

import pytest

from repro.array import StripeLockTable
from repro.array.faults import DataLossError
from repro.array.locks import _Mutex
from repro.sim import Environment


class TestMutualExclusion:
    def test_second_acquire_waits_for_release(self):
        env = Environment()
        locks = StripeLockTable(env)
        order = []

        def holder(env):
            yield locks.acquire(7)
            order.append("holder-in")
            yield env.timeout(10.0)
            locks.release(7)
            order.append("holder-out")

        def waiter(env):
            yield env.timeout(1.0)
            yield locks.acquire(7)
            order.append(("waiter-in", env.now))
            locks.release(7)

        env.process(holder(env))
        env.process(waiter(env))
        env.run()
        assert order == ["holder-in", "holder-out", ("waiter-in", 10.0)]

    def test_different_stripes_do_not_contend(self):
        env = Environment()
        locks = StripeLockTable(env)
        times = {}

        def worker(env, stripe):
            yield locks.acquire(stripe)
            times[stripe] = env.now
            yield env.timeout(5.0)
            locks.release(stripe)

        env.process(worker(env, 1))
        env.process(worker(env, 2))
        env.run()
        assert times == {1: 0.0, 2: 0.0}

    def test_fifo_fairness(self):
        env = Environment()
        locks = StripeLockTable(env)
        admitted = []

        def holder(env):
            yield locks.acquire(0)
            yield env.timeout(5.0)
            locks.release(0)

        def waiter(env, tag, delay):
            yield env.timeout(delay)
            yield locks.acquire(0)
            admitted.append(tag)
            yield env.timeout(1.0)
            locks.release(0)

        env.process(holder(env))
        env.process(waiter(env, "a", 1.0))
        env.process(waiter(env, "b", 2.0))
        env.process(waiter(env, "c", 3.0))
        env.run()
        assert admitted == ["a", "b", "c"]

    def test_fifo_grant_order_under_same_instant_contention(self):
        """Waiters queued at the same simulated instant are granted in
        submission order — the replayable schedule LOCK001 protects."""
        env = Environment()
        locks = StripeLockTable(env)
        admitted = []

        def holder(env):
            yield locks.acquire(0)
            yield env.timeout(5.0)
            locks.release(0)

        def waiter(env, tag):
            yield locks.acquire(0)
            admitted.append((tag, env.now))
            locks.release(0)

        env.process(holder(env))
        for tag in ("w0", "w1", "w2", "w3"):
            env.process(waiter(env, tag))
        env.run()
        assert admitted == [
            ("w0", 5.0), ("w1", 5.0), ("w2", 5.0), ("w3", 5.0)
        ]


class TestHousekeeping:
    def test_idle_locks_are_discarded(self):
        env = Environment()
        locks = StripeLockTable(env)

        def body(env):
            yield locks.acquire(3)
            locks.release(3)

        env.process(body(env))
        env.run()
        assert locks.held_count == 0

    def test_held_count_while_locked(self):
        env = Environment()
        locks = StripeLockTable(env)

        def body(env):
            yield locks.acquire(3)
            yield env.timeout(1.0)
            locks.release(3)

        env.process(body(env))
        env.run(until=0.5)
        assert locks.held_count == 1

    def test_release_unheld_raises(self):
        env = Environment()
        locks = StripeLockTable(env)
        with pytest.raises(KeyError):
            locks.release(9)


class TestDiscipline:
    def test_lock_released_on_exception_in_critical_section(self):
        """A fault raised inside a try/finally critical section must not
        leak the stripe lock: later acquirers still get in."""
        env = Environment()
        locks = StripeLockTable(env)
        admitted = []

        def faulty(env):
            yield locks.acquire(4)
            try:
                yield env.timeout(2.0)
                raise DataLossError("simulated double failure")
            except DataLossError:
                pass
            finally:
                locks.release(4)

        def follower(env):
            yield env.timeout(1.0)
            yield locks.acquire(4)
            admitted.append(env.now)
            locks.release(4)

        env.process(faulty(env))
        env.process(follower(env))
        env.run()
        assert admitted == [2.0]
        assert locks.held_count == 0

    def test_exception_thrown_into_waiting_process_releases_lock(self):
        """The LOCK001 scenario end to end: the fault arrives *via the
        kernel* (a failing event thrown into the generator at its yield
        point), and the try/finally still releases the stripe lock."""
        env = Environment()
        locks = StripeLockTable(env)
        admitted = []
        doomed = env.event()

        def victim(env):
            yield locks.acquire(8)
            try:
                yield doomed  # fails -> DataLossError thrown in here
            except DataLossError:
                pass
            finally:
                locks.release(8)

        def saboteur(env):
            yield env.timeout(3.0)
            doomed.fail(DataLossError("injected at the yield point"))

        def follower(env):
            yield env.timeout(1.0)
            yield locks.acquire(8)
            admitted.append(env.now)
            locks.release(8)

        env.process(victim(env))
        env.process(saboteur(env))
        env.process(follower(env))
        env.run()
        assert admitted == [3.0]
        assert locks.held_count == 0

    def test_double_release_raises(self):
        """A second release of the same stripe raises instead of silently
        corrupting lock state (the table discards idle mutexes, so the
        stale stripe key is gone)."""
        env = Environment()
        locks = StripeLockTable(env)
        errors = []

        def body(env):
            yield locks.acquire(5)
            locks.release(5)
            try:
                locks.release(5)
            except (KeyError, RuntimeError) as error:
                errors.append(error)

        env.process(body(env))
        env.run()
        assert len(errors) == 1
        assert locks.held_count == 0

    def test_mutex_double_release_raises(self):
        """The underlying mutex refuses to release an unlocked lock."""
        env = Environment()
        mutex = _Mutex(env)
        mutex.acquire()
        mutex.release()
        with pytest.raises(RuntimeError, match="release of an unlocked mutex"):
            mutex.release()
