"""Unit tests for per-stripe locks."""

import pytest

from repro.array import StripeLockTable
from repro.sim import Environment


class TestMutualExclusion:
    def test_second_acquire_waits_for_release(self):
        env = Environment()
        locks = StripeLockTable(env)
        order = []

        def holder(env):
            yield locks.acquire(7)
            order.append("holder-in")
            yield env.timeout(10.0)
            locks.release(7)
            order.append("holder-out")

        def waiter(env):
            yield env.timeout(1.0)
            yield locks.acquire(7)
            order.append(("waiter-in", env.now))
            locks.release(7)

        env.process(holder(env))
        env.process(waiter(env))
        env.run()
        assert order == ["holder-in", "holder-out", ("waiter-in", 10.0)]

    def test_different_stripes_do_not_contend(self):
        env = Environment()
        locks = StripeLockTable(env)
        times = {}

        def worker(env, stripe):
            yield locks.acquire(stripe)
            times[stripe] = env.now
            yield env.timeout(5.0)
            locks.release(stripe)

        env.process(worker(env, 1))
        env.process(worker(env, 2))
        env.run()
        assert times == {1: 0.0, 2: 0.0}

    def test_fifo_fairness(self):
        env = Environment()
        locks = StripeLockTable(env)
        admitted = []

        def holder(env):
            yield locks.acquire(0)
            yield env.timeout(5.0)
            locks.release(0)

        def waiter(env, tag, delay):
            yield env.timeout(delay)
            yield locks.acquire(0)
            admitted.append(tag)
            yield env.timeout(1.0)
            locks.release(0)

        env.process(holder(env))
        env.process(waiter(env, "a", 1.0))
        env.process(waiter(env, "b", 2.0))
        env.process(waiter(env, "c", 3.0))
        env.run()
        assert admitted == ["a", "b", "c"]


class TestHousekeeping:
    def test_idle_locks_are_discarded(self):
        env = Environment()
        locks = StripeLockTable(env)

        def body(env):
            yield locks.acquire(3)
            locks.release(3)

        env.process(body(env))
        env.run()
        assert locks.held_count == 0

    def test_held_count_while_locked(self):
        env = Environment()
        locks = StripeLockTable(env)

        def body(env):
            yield locks.acquire(3)
            yield env.timeout(1.0)
            locks.release(3)

        env.process(body(env))
        env.run(until=0.5)
        assert locks.held_count == 1

    def test_release_unheld_raises(self):
        env = Environment()
        locks = StripeLockTable(env)
        with pytest.raises(KeyError):
            locks.release(9)
