"""G=2 stripes as mirrors: interleaved declustering (Copeland & Keller).

With one data unit per stripe, the parity unit is a byte-identical
copy, so a complete (C, 2) design is exactly the related-work section's
interleaved declustering: each disk's secondary data spread over all
other disks.
"""

import pytest

from repro.recon import Reconstructor
from tests.conftest import build_array, total_disk_accesses


def mirrored_array(**overrides):
    return build_array(num_disks=5, stripe_size=2, **overrides)


class TestMirroredWrites:
    def test_write_costs_two_accesses_no_prereads(self):
        # With G=2 every aligned write is a full-stripe write, so the
        # large-write path provides mirrored two-access writes for free.
        array = mirrored_array()
        array.run_op(array.controller.write(0, values=[0xAB]))
        assert total_disk_accesses(array.controller) == 2
        assert array.controller.stats.by_path == {"large-write": 1}

    def test_both_copies_hold_the_value(self):
        array = mirrored_array()
        array.run_op(array.controller.write(3, values=[0xCD]))
        layout = array.layout
        store = array.controller.datastore
        stripe = layout.stripe_of_logical(3)
        data = layout.data_unit(stripe, 0)
        copy = layout.parity_unit(stripe)
        assert store.read_unit(data.disk, data.offset) == 0xCD
        assert store.read_unit(copy.disk, copy.offset) == 0xCD

    def test_capacity_overhead_is_half(self):
        array = mirrored_array()
        assert array.layout.parity_overhead() == pytest.approx(0.5)


class TestMirroredReads:
    def test_read_balances_to_the_shorter_queue(self):
        array = mirrored_array(with_datastore=False)
        controller = array.controller
        layout = array.layout
        primary = layout.logical_to_physical(0)
        # Pile work onto the primary copy's disk, then read unit 0: the
        # mirror copy must serve it.
        for _ in range(6):
            controller.disks[primary.disk].access(0, 8, is_write=False)
        array.run_op(controller.read(0))
        mirror = layout.parity_unit(layout.stripe_of_logical(0))
        assert controller.disks[mirror.disk].stats.completed >= 1

    def test_balanced_read_returns_correct_value(self):
        array = mirrored_array()
        controller = array.controller
        array.run_op(controller.write(0, values=[0x77]))
        primary = array.layout.logical_to_physical(0)
        for _ in range(6):
            controller.disks[primary.disk].access(0, 8, is_write=False)
        request = array.run_op(controller.read(0))
        assert request.read_values == [0x77]

    def test_degraded_read_uses_surviving_copy(self):
        array = mirrored_array()
        controller = array.controller
        layout = array.layout
        # Find a logical unit whose primary lives on disk 2.
        logical = next(
            unit for unit in range(array.addressing.num_data_units)
            if layout.logical_to_physical(unit).disk == 2
        )
        array.run_op(controller.write(logical, values=[0x99]))
        controller.fail_disk(2)
        request = array.run_op(controller.read(logical))
        # One access to the mirror (G-1 = 1): mirrored degraded reads
        # are as cheap as fault-free ones.
        assert request.read_values == [0x99]
        assert request.paths == ["on-the-fly-read"]


class TestMirroredRecovery:
    def test_reconstruction_copies_from_mirrors(self):
        from tests.recon.test_sweeper import replacement_is_bit_exact

        array = mirrored_array()
        controller = array.controller
        controller.fail_disk(1)
        controller.install_replacement()
        array.env.run(until=Reconstructor(controller, workers=4).start())
        assert replacement_is_bit_exact(array)

    def test_reconstruction_reads_one_unit_per_cycle(self):
        array = mirrored_array()
        controller = array.controller
        controller.fail_disk(1)
        controller.install_replacement()
        reconstructor = Reconstructor(controller, workers=1)
        array.env.run(until=reconstructor.start())
        # Each cycle: 1 mirror read + 1 replacement write.
        reads = sum(
            d.stats.completed_by_kind.get("recon", 0)
            for i, d in enumerate(controller.disks) if i != 1
        )
        assert reads == reconstructor.result().swept_units
