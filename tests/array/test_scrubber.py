"""Unit tests for background parity scrubbing."""

import pytest

from repro.array.scrubber import ParityScrubber
from repro.faults.profile import FaultProfile
from repro.workload import SyntheticWorkload, WorkloadConfig
from tests.conftest import build_array


def corrupt_parity(array, stripe):
    parity = array.layout.parity_unit(stripe)
    store = array.controller.datastore
    store.write_unit(parity.disk, parity.offset, store.parity_value(stripe) ^ 0xFF)


class TestCleanScrub:
    def test_clean_array_has_no_mismatches(self, small_array):
        scrubber = ParityScrubber(small_array.controller)
        report = small_array.env.run(until=scrubber.start())
        assert report.stripes_checked == small_array.addressing.num_stripes
        assert report.mismatches_found == 0
        assert report.duration_ms > 0

    def test_scrub_reads_every_unit(self, small_array):
        scrubber = ParityScrubber(small_array.controller)
        small_array.env.run(until=scrubber.start())
        total_reads = sum(
            disk.stats.completed_by_kind.get("recon", 0)
            for disk in small_array.controller.disks
        )
        expected = small_array.addressing.num_stripes * small_array.layout.stripe_size
        assert total_reads == expected


class TestRepair:
    def test_detects_and_repairs_corruption(self, small_array):
        for stripe in (0, 7, 12):
            corrupt_parity(small_array, stripe)
        scrubber = ParityScrubber(small_array.controller)
        report = small_array.env.run(until=scrubber.start())
        assert report.mismatches_found == 3
        assert sorted(report.mismatched_stripes) == [0, 7, 12]
        assert report.repairs_written == 3
        store = small_array.controller.datastore
        for stripe in range(small_array.addressing.num_stripes):
            assert store.stripe_is_consistent(stripe)

    def test_report_only_mode_leaves_corruption(self, small_array):
        corrupt_parity(small_array, 5)
        scrubber = ParityScrubber(small_array.controller, repair=False)
        report = small_array.env.run(until=scrubber.start())
        assert report.mismatches_found == 1
        assert report.repairs_written == 0
        assert not small_array.controller.datastore.stripe_is_consistent(5)

    def test_scrub_under_user_load_stays_consistent(self):
        array = build_array()
        workload = SyntheticWorkload(
            array.controller,
            WorkloadConfig(access_rate_per_s=40, read_fraction=0.5),
        )
        workload.run(duration_ms=float("inf"))
        corrupt_parity(array, 3)
        scrubber = ParityScrubber(array.controller)
        report = array.env.run(until=scrubber.start())
        workload.stop()
        array.env.run(until=workload.drained())
        assert report.mismatches_found >= 1
        assert workload.integrity_errors == []
        store = array.controller.datastore
        for stripe in range(array.addressing.num_stripes):
            assert store.stripe_is_consistent(stripe)


class TestLifecycle:
    def test_throttle_slows_the_scrub(self):
        fast = build_array()
        slow = build_array()
        fast.env.run(until=ParityScrubber(fast.controller).start())
        slow.env.run(
            until=ParityScrubber(slow.controller, cycle_delay_ms=5.0).start()
        )
        assert slow.env.now > fast.env.now

    def test_degraded_array_rejected(self, small_array):
        small_array.controller.fail_disk(1)
        with pytest.raises(RuntimeError, match="fault-free"):
            ParityScrubber(small_array.controller).start()

    def test_double_start_rejected(self, small_array):
        scrubber = ParityScrubber(small_array.controller)
        scrubber.start()
        with pytest.raises(RuntimeError, match="already"):
            scrubber.start()

    def test_negative_delay_rejected(self, small_array):
        with pytest.raises(ValueError):
            ParityScrubber(small_array.controller, cycle_delay_ms=-1.0)


def plant_latent(array, unit):
    """Mark one stripe unit latent-unreadable on its disk."""
    sector = array.addressing.unit_to_sector(unit)
    state = array.controller.disks[unit.disk].fault_state
    state.add_latent(sector, array.addressing.sectors_per_unit)
    return state


class TestLatentErrorScrub:
    """Satellite: the scrub detects and repairs latent sector errors."""

    def build_faulty_array(self):
        # A quiescent profile arms the error-outcome paths without any
        # stochastic fault source perturbing the scrub.
        return build_array(fault_profile=FaultProfile(seed=3))

    def test_latent_unit_is_detected_and_repaired(self):
        array = self.build_faulty_array()
        unit = array.layout.stripe_units(4)[1]
        state = plant_latent(array, unit)
        report = array.env.run(until=ParityScrubber(array.controller).start())
        assert report.media_errors_found == 1
        assert report.media_repairs == 1
        # The rewrite remapped the extent and restored the value.
        assert state.latent_extents == 0
        store = array.controller.datastore
        for stripe in range(array.addressing.num_stripes):
            assert store.stripe_is_consistent(stripe)

    def test_repaired_parity_passes_the_parity_check(self):
        array = self.build_faulty_array()
        parity = array.layout.parity_unit(7)
        plant_latent(array, parity)
        report = array.env.run(until=ParityScrubber(array.controller).start())
        assert report.media_repairs == 1
        assert report.mismatches_found == 0

    def test_report_only_scrub_leaves_the_latent_extent(self):
        array = self.build_faulty_array()
        unit = array.layout.stripe_units(2)[0]
        state = plant_latent(array, unit)
        report = array.env.run(
            until=ParityScrubber(array.controller, repair=False).start()
        )
        assert report.media_errors_found == 1
        assert report.media_repairs == 0
        assert state.latent_extents == 1

    def test_two_latent_units_in_one_stripe_cannot_be_rebuilt(self):
        array = self.build_faulty_array()
        units = array.layout.stripe_units(9)
        plant_latent(array, units[0])
        plant_latent(array, units[2])
        report = array.env.run(until=ParityScrubber(array.controller).start())
        assert report.media_errors_found == 2
        assert report.media_repairs == 0

    def test_clean_faulty_array_scrubs_clean(self):
        array = self.build_faulty_array()
        report = array.env.run(until=ParityScrubber(array.controller).start())
        assert report.media_errors_found == 0
        assert report.media_repairs == 0
        assert report.mismatches_found == 0
