"""Unit tests for the spare pool."""

import pytest

from repro.array.sparing import SparePool
from repro.faults.log import SPARES_EXHAUSTED, FaultLog
from repro.recon import USER_WRITES


class TestAutomaticRepair:
    def test_hot_spare_repair_completes(self, small_array):
        pool = SparePool(small_array.controller, spares=1, recon_workers=4)
        record = small_array.env.run(until=pool.handle_failure(2))
        assert record.failed_disk == 2
        assert record.replacement_delay_ms == 0.0
        assert record.reconstruction_ms > 0
        assert small_array.controller.faults.fault_free
        assert pool.spares_remaining == 0
        assert pool.repairs == [record]

    def test_replacement_delay_is_honored(self, small_array):
        pool = SparePool(
            small_array.controller, spares=1, replacement_delay_ms=5_000.0,
            recon_workers=4,
        )
        record = small_array.env.run(until=pool.handle_failure(2))
        assert record.replacement_delay_ms == pytest.approx(5_000.0)
        assert record.total_repair_ms == pytest.approx(
            record.replacement_delay_ms + record.reconstruction_ms
        )

    def test_repair_is_bit_exact(self, small_array):
        from tests.recon.test_sweeper import replacement_is_bit_exact

        pool = SparePool(small_array.controller, spares=1, recon_workers=4)
        small_array.env.run(until=pool.handle_failure(1))
        assert replacement_is_bit_exact(small_array)

    def test_sequential_failures_consume_spares(self, small_array):
        pool = SparePool(small_array.controller, spares=2, recon_workers=4)
        small_array.env.run(until=pool.handle_failure(0))
        small_array.env.run(until=pool.handle_failure(3))
        assert pool.spares_remaining == 0
        assert [r.failed_disk for r in pool.repairs] == [0, 3]

    def test_algorithm_override_applies(self, small_array):
        pool = SparePool(
            small_array.controller, spares=1, recon_workers=4,
            algorithm=USER_WRITES,
        )
        small_array.env.run(until=pool.handle_failure(2))
        assert small_array.controller.algorithm is USER_WRITES


class TestExhaustion:
    def test_no_spares_enters_degraded_forever_state(self, small_array):
        controller = small_array.controller
        controller.fault_log = FaultLog()
        pool = SparePool(controller, spares=0)
        assert pool.handle_failure(2) is None
        assert not controller.faults.fault_free
        assert pool.exhausted
        assert pool.degraded_disks == [2]
        assert pool.repairs == []
        events = controller.fault_log.of_kind(SPARES_EXHAUSTED)
        assert len(events) == 1
        assert events[0].disk == 2

    def test_degraded_forever_array_keeps_serving(self, small_array):
        """Exhaustion is not an outage: reads of the dead disk decode
        on the fly, indefinitely."""
        controller = small_array.controller
        pool = SparePool(controller, spares=0)
        pool.handle_failure(2)
        done = controller.read(0, num_units=controller.addressing.num_data_units)
        request = small_array.env.run(until=done)
        assert "on-the-fly-read" in request.paths
        assert not request.lost_units

    def test_restock_enables_future_repairs(self, small_array):
        pool = SparePool(small_array.controller, spares=1, recon_workers=4)
        small_array.env.run(until=pool.handle_failure(0))
        pool.restock()
        record = small_array.env.run(until=pool.handle_failure(4))
        assert record.failed_disk == 4

    def test_restock_does_not_resurrect_degraded_disks(self, small_array):
        controller = small_array.controller
        pool = SparePool(controller, spares=0)
        pool.handle_failure(2)
        pool.restock()
        assert pool.degraded_disks == [2]
        assert not controller.faults.fault_free

    def test_validation(self, small_array):
        with pytest.raises(ValueError):
            SparePool(small_array.controller, spares=-1)
        with pytest.raises(ValueError):
            SparePool(small_array.controller, replacement_delay_ms=-1.0)
        pool = SparePool(small_array.controller)
        with pytest.raises(ValueError):
            pool.restock(0)
