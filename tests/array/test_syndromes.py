"""GF(2^64) syndrome arithmetic: field axioms, Q updates, erasure solves."""

import random

import pytest

from repro.array import syndromes as gf


def _poly_mulmod(a: int, b: int, modulus: int) -> int:
    """Carry-less multiply of bit-polynomials reduced mod ``modulus``."""
    result = 0
    while b:
        if b & 1:
            result ^= a
        b >>= 1
        a <<= 1
    degree = modulus.bit_length() - 1
    while result.bit_length() - 1 >= degree:
        result ^= modulus << (result.bit_length() - 1 - degree)
    return result


def _poly_gcd(a: int, b: int) -> int:
    while b:
        if a.bit_length() < b.bit_length():
            a, b = b, a
            continue
        a ^= b << (a.bit_length() - b.bit_length())
    return a


class TestReductionPolynomial:
    def test_pentanomial_is_irreducible(self):
        """x^(2^64) == x mod f and gcd(x^(2^32) ^ x, f) == 1.

        Together these are the standard irreducibility certificate for
        a degree-64 binary polynomial (64's only prime factor is 2, so
        the single gcd test rules out all proper factors).
        """
        x = 0b10
        frobenius = x
        for step in range(64):
            frobenius = _poly_mulmod(frobenius, frobenius, gf.POLY)
            if step == 31:
                half = frobenius
        assert frobenius == x
        assert _poly_gcd(half ^ x, gf.POLY) == 1

    def test_poly_matches_low_constant(self):
        assert gf.POLY == (1 << 64) | 0x1B


class TestFieldAxioms:
    def test_identity_and_zero(self):
        rng = random.Random(1)
        for _ in range(20):
            a = rng.getrandbits(64)
            assert gf.mul(a, 1) == a
            assert gf.mul(a, 0) == 0

    def test_commutative_and_associative(self):
        rng = random.Random(2)
        for _ in range(20):
            a, b, c = (rng.getrandbits(64) for _ in range(3))
            assert gf.mul(a, b) == gf.mul(b, a)
            assert gf.mul(gf.mul(a, b), c) == gf.mul(a, gf.mul(b, c))

    def test_distributive_over_xor(self):
        rng = random.Random(3)
        for _ in range(20):
            a, b, c = (rng.getrandbits(64) for _ in range(3))
            assert gf.mul(a, b ^ c) == gf.mul(a, b) ^ gf.mul(a, c)

    def test_inverse(self):
        rng = random.Random(4)
        for _ in range(8):
            a = rng.getrandbits(64) | 1
            assert gf.mul(a, gf.inv(a)) == 1

    def test_zero_has_no_inverse(self):
        with pytest.raises(ZeroDivisionError):
            gf.inv(0)

    def test_x_pow_matches_repeated_xtime(self):
        value = 1
        for j in range(70):
            assert gf.x_pow(j) == value
            value = gf.xtime(value)


class TestSyndromes:
    def test_q_update_matches_recompute(self):
        rng = random.Random(5)
        data = [rng.getrandbits(64) for _ in range(8)]
        q = gf.q_of(data)
        for pos in range(len(data)):
            new = rng.getrandbits(64)
            q = gf.q_update(q, pos, data[pos], new)
            data[pos] = new
            assert q == gf.q_of(data)

    def test_recover_single_via_p(self):
        rng = random.Random(6)
        data = [rng.getrandbits(64) for _ in range(5)]
        p, q = gf.p_of(data), gf.q_of(data)
        for lost in range(len(data)):
            holes = list(data)
            holes[lost] = None
            assert gf.recover_stripe_data(holes, p, q) == data

    def test_recover_single_via_q_when_p_lost(self):
        rng = random.Random(7)
        data = [rng.getrandbits(64) for _ in range(5)]
        q = gf.q_of(data)
        for lost in range(len(data)):
            holes = list(data)
            holes[lost] = None
            assert gf.recover_stripe_data(holes, None, q) == data

    def test_recover_two_data_units(self):
        rng = random.Random(8)
        data = [rng.getrandbits(64) for _ in range(6)]
        p, q = gf.p_of(data), gf.q_of(data)
        for a in range(len(data)):
            for b in range(a + 1, len(data)):
                holes = list(data)
                holes[a] = holes[b] = None
                assert gf.recover_stripe_data(holes, p, q) == data

    def test_three_erasures_rejected(self):
        data = [1, 2, None, None]
        with pytest.raises(ValueError):
            gf.recover_stripe_data(data, None, 7)

    def test_no_erasures_is_identity(self):
        data = [3, 1, 4, 1, 5]
        assert gf.recover_stripe_data(data, gf.p_of(data), gf.q_of(data)) == data

    def test_recover_two_rejects_equal_positions(self):
        with pytest.raises(ValueError):
            gf.recover_two(1, 2, 3, 3)
