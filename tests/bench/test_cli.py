"""``python -m repro bench`` end to end, with stubbed suites."""

import json

import pytest

from repro.bench import cli, harness


@pytest.fixture
def stub_registries(monkeypatch):
    rate_box = {"rate": 1000.0}

    def stub_micro():
        return {"events": 10.0, "wall_s": 0.01, "events_per_s": rate_box["rate"]}

    monkeypatch.setattr(harness, "MICRO_BENCHMARKS", {"kernel.stub": stub_micro})
    monkeypatch.setattr(harness, "DISK_BENCHMARKS", {})
    monkeypatch.setattr(harness, "LAYOUT_BENCHMARKS", {})
    monkeypatch.setattr(harness, "MACRO_BENCHMARKS", {})
    return rate_box


def run_cli(args):
    return cli.main(args)


class TestBenchCli:
    def test_no_write_prints_results_only(self, stub_registries, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert run_cli(["--no-write", "--repeat", "1"]) == 0
        assert list(tmp_path.glob("BENCH_*.json")) == []
        assert "kernel.stub" in capsys.readouterr().out

    def test_writes_document_by_default(self, stub_registries, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert run_cli(["--repeat", "1"]) == 0
        documents = list(tmp_path.glob("BENCH_*.json"))
        assert len(documents) == 1
        assert "kernel.stub" in json.loads(documents[0].read_text())["results"]

    def test_explicit_out_path(self, stub_registries, tmp_path):
        out = tmp_path / "custom.json"
        assert run_cli(["--repeat", "1", "--out", str(out)]) == 0
        assert out.exists()

    def test_write_baseline_then_check_passes(self, stub_registries, tmp_path):
        baseline = tmp_path / "bench-baseline.json"
        assert run_cli(["--repeat", "1", "--no-write", "--write-baseline", str(baseline)]) == 0
        assert baseline.exists()
        assert run_cli(["--repeat", "1", "--no-write", "--check", str(baseline)]) == 0

    def test_check_fails_on_regression_with_escape_hatch_hint(
        self, stub_registries, tmp_path, capsys
    ):
        baseline = tmp_path / "bench-baseline.json"
        assert run_cli(["--repeat", "1", "--no-write", "--write-baseline", str(baseline)]) == 0
        stub_registries["rate"] = 700.0  # -30%: beyond the 25% tolerance
        assert run_cli(["--repeat", "1", "--no-write", "--check", str(baseline)]) == 1
        captured = capsys.readouterr()
        assert "REGRESS" in captured.out
        assert "--write-baseline" in captured.err  # the documented re-baseline hatch

    def test_check_tolerance_flag(self, stub_registries, tmp_path):
        baseline = tmp_path / "bench-baseline.json"
        run_cli(["--repeat", "1", "--no-write", "--write-baseline", str(baseline)])
        stub_registries["rate"] = 700.0
        assert run_cli([
            "--repeat", "1", "--no-write", "--check", str(baseline),
            "--tolerance", "0.4",
        ]) == 0

    def test_missing_baseline_file_is_usage_error(self, stub_registries, tmp_path):
        assert run_cli([
            "--repeat", "1", "--no-write", "--check", str(tmp_path / "absent.json"),
        ]) == 2

    def test_unknown_only_name_is_usage_error(self, stub_registries, capsys):
        assert run_cli(["--only", "kernel.nope", "--no-write"]) == 2
        assert "unknown benchmark" in capsys.readouterr().err

    def test_repro_cli_routes_bench_subcommand(self, stub_registries, tmp_path, monkeypatch):
        from repro import cli as top_cli

        monkeypatch.chdir(tmp_path)
        assert top_cli.main(["bench", "--repeat", "1", "--no-write"]) == 0


class TestFingerprintNotice:
    def test_foreign_baseline_warns_on_stderr(self, stub_registries, tmp_path, capsys):
        baseline = tmp_path / "bench-baseline.json"
        assert run_cli(["--repeat", "1", "--no-write", "--write-baseline", str(baseline)]) == 0
        doctored = json.loads(baseline.read_text())
        doctored["environment"]["cpu"] = "Imaginary CPU @ 9GHz"
        baseline.write_text(json.dumps(doctored))
        capsys.readouterr()  # drop the write-baseline output
        assert run_cli(["--repeat", "1", "--no-write", "--check", str(baseline)]) == 0
        captured = capsys.readouterr()
        assert "baseline environment differs" in captured.err
        assert "Imaginary CPU" in captured.err

    def test_same_machine_baseline_stays_quiet(self, stub_registries, tmp_path, capsys):
        baseline = tmp_path / "bench-baseline.json"
        assert run_cli(["--repeat", "1", "--no-write", "--write-baseline", str(baseline)]) == 0
        capsys.readouterr()
        assert run_cli(["--repeat", "1", "--no-write", "--check", str(baseline)]) == 0
        assert "baseline environment differs" not in capsys.readouterr().err
