"""The CI perf gate's regression decision logic."""

import pytest

from repro.bench.compare import check_against_baseline
from tests.bench.test_schema import minimal_document


def document_with_rate(rate: float):
    document = minimal_document()
    document["results"] = {
        "kernel.timeout_churn": {"wall_s": 0.5, "events_per_s": rate},
    }
    return document


class TestCheckAgainstBaseline:
    def test_equal_rates_pass(self):
        check = check_against_baseline(document_with_rate(1000.0), document_with_rate(1000.0))
        assert check.ok
        assert not check.regressions and not check.improvements

    def test_small_drop_within_tolerance_passes(self):
        check = check_against_baseline(document_with_rate(800.0), document_with_rate(1000.0))
        assert check.ok  # -20% is inside the default 25% tolerance

    def test_large_drop_fails(self):
        check = check_against_baseline(document_with_rate(700.0), document_with_rate(1000.0))
        assert not check.ok
        assert check.regressions == ["kernel.timeout_churn:events_per_s"]
        assert "REGRESSED" in check.summary()

    def test_boundary_is_inclusive_of_tolerance(self):
        # Exactly -25% is not *more than* the tolerance: still passing.
        check = check_against_baseline(document_with_rate(750.0), document_with_rate(1000.0))
        assert check.ok

    def test_improvement_is_flagged_not_failed(self):
        check = check_against_baseline(document_with_rate(2000.0), document_with_rate(1000.0))
        assert check.ok
        assert check.improvements == ["kernel.timeout_churn:events_per_s"]
        assert "re-baselining" in check.summary()

    def test_metric_missing_from_current_run_fails(self):
        current = document_with_rate(1000.0)
        current["results"] = {"kernel.timeout_churn": {"wall_s": 0.5}}
        check = check_against_baseline(current, document_with_rate(1000.0))
        assert not check.ok
        assert check.missing == ["kernel.timeout_churn:events_per_s"]

    def test_new_metric_in_current_run_does_not_fail(self):
        current = document_with_rate(1000.0)
        current["results"]["macro.fault_free"] = {"wall_s": 1.0, "ios_per_s": 5.0}
        check = check_against_baseline(current, document_with_rate(1000.0))
        assert check.ok
        assert any("NEW" in line for line in check.lines)

    def test_custom_tolerance(self):
        current, baseline = document_with_rate(890.0), document_with_rate(1000.0)
        assert check_against_baseline(current, baseline, tolerance=0.2).ok
        assert not check_against_baseline(current, baseline, tolerance=0.1).ok

    @pytest.mark.parametrize("tolerance", [0.0, 1.0, -0.5, 2.0])
    def test_tolerance_out_of_range_rejected(self, tolerance):
        with pytest.raises(ValueError):
            check_against_baseline(
                document_with_rate(1.0), document_with_rate(1.0), tolerance=tolerance
            )

    def test_invalid_documents_rejected(self):
        broken = document_with_rate(1.0)
        del broken["environment"]
        with pytest.raises(ValueError):
            check_against_baseline(broken, document_with_rate(1.0))


class TestFingerprintMismatch:
    def _env(self, **overrides):
        env = {"cpu": "TestCPU @ 2GHz", "cpu_count": 4, "python": "3.11.7"}
        env.update(overrides)
        return env

    def test_matching_fingerprints_return_none(self):
        from repro.bench.compare import fingerprint_mismatch

        assert fingerprint_mismatch(self._env(), self._env()) is None

    def test_extra_fields_are_ignored(self):
        from repro.bench.compare import fingerprint_mismatch

        current = self._env(commit="abc", dirty=True)
        baseline = self._env(commit="def", dirty=False)
        assert fingerprint_mismatch(current, baseline) is None

    def test_differing_cpu_names_field_and_both_values(self):
        from repro.bench.compare import fingerprint_mismatch

        notice = fingerprint_mismatch(self._env(), self._env(cpu="OtherCPU"))
        assert notice is not None and "\n" not in notice  # one line
        assert "cpu" in notice and "OtherCPU" in notice and "TestCPU" in notice
        assert "hardware" in notice

    def test_multiple_differences_all_listed(self):
        from repro.bench.compare import fingerprint_mismatch

        notice = fingerprint_mismatch(
            self._env(), self._env(cpu_count=32, python="3.9.1")
        )
        assert "cpu_count" in notice and "python" in notice

    def test_missing_baseline_env_reports_all_fields(self):
        from repro.bench.compare import fingerprint_mismatch

        notice = fingerprint_mismatch(self._env(), {})
        for field in ("cpu", "cpu_count", "python"):
            assert field in notice
