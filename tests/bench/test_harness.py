"""Benchmark orchestration: selection, repeats, documents on disk."""

import pytest

from repro.bench import harness
from repro.bench.harness import (
    BenchOptions,
    benchmark_names,
    default_output_path,
    load_document,
    run_benchmarks,
    write_document,
)
from repro.bench.schema import BenchSchemaError, validate_document


@pytest.fixture
def stub_registries(monkeypatch):
    """Replace the real suites with instant, countable stand-ins."""
    micro_walls = iter([0.3, 0.1, 0.2])
    calls = {"micro": 0, "macro_scales": []}

    def stub_micro():
        calls["micro"] += 1
        wall = next(micro_walls)
        return {"events": 100.0, "wall_s": wall, "events_per_s": 100.0 / wall}

    def stub_macro(scale):
        calls["macro_scales"].append(scale)
        return {"wall_s": 1.0, "ios_per_s": 42.0}

    monkeypatch.setattr(harness, "MICRO_BENCHMARKS", {"kernel.stub": stub_micro})
    monkeypatch.setattr(harness, "DISK_BENCHMARKS", {})
    monkeypatch.setattr(harness, "LAYOUT_BENCHMARKS", {})
    monkeypatch.setattr(harness, "MACRO_BENCHMARKS", {"macro.stub": stub_macro})
    return calls


class TestBenchOptions:
    def test_defaults_select_everything(self, stub_registries):
        assert BenchOptions().selected() == ["kernel.stub", "macro.stub"]

    def test_only_filters_in_canonical_order(self, stub_registries):
        options = BenchOptions(only=("macro.stub", "kernel.stub"))
        assert options.selected() == ["kernel.stub", "macro.stub"]

    def test_unknown_benchmark_rejected(self, stub_registries):
        with pytest.raises(ValueError, match="unknown benchmark"):
            BenchOptions(only=("kernel.nope",))

    def test_repeat_must_be_positive(self):
        with pytest.raises(ValueError):
            BenchOptions(repeat=0)


class TestRunBenchmarks:
    def test_document_is_schema_valid(self, stub_registries):
        document = run_benchmarks(BenchOptions(repeat=1))
        validate_document(document)
        assert set(document["results"]) == {"kernel.stub", "macro.stub"}

    def test_fastest_repeat_is_recorded(self, stub_registries):
        document = run_benchmarks(BenchOptions(only=("kernel.stub",), repeat=3))
        entry = document["results"]["kernel.stub"]
        assert stub_registries["micro"] == 3
        assert entry["wall_s"] == 0.1  # the middle, fastest attempt won

    def test_macro_receives_the_scale(self, stub_registries):
        run_benchmarks(BenchOptions(only=("macro.stub",), scale="small", repeat=2))
        assert stub_registries["macro_scales"] == ["small", "small"]

    def test_log_callback_sees_every_attempt(self, stub_registries):
        lines = []
        run_benchmarks(BenchOptions(repeat=1), log=lines.append)
        assert len(lines) == 2 and all("wall=" in line for line in lines)


class TestDocumentsOnDisk:
    def test_write_then_load_roundtrip(self, stub_registries, tmp_path):
        document = run_benchmarks(BenchOptions(repeat=1))
        path = write_document(document, tmp_path / "deep" / "BENCH_test.json")
        assert path.exists()
        assert load_document(path) == document

    def test_write_rejects_invalid_document(self, tmp_path):
        with pytest.raises(BenchSchemaError):
            write_document({"schema": "nonsense"}, tmp_path / "bad.json")

    def test_load_rejects_tampered_document(self, stub_registries, tmp_path):
        document = run_benchmarks(BenchOptions(repeat=1))
        del document["environment"]
        (tmp_path / "bad.json").write_text(__import__("json").dumps(document))
        with pytest.raises(BenchSchemaError):
            load_document(tmp_path / "bad.json")

    def test_default_output_path_shape(self, tmp_path):
        path = default_output_path(tmp_path)
        assert path.parent == tmp_path
        assert path.name.startswith("BENCH_") and path.suffix == ".json"


class TestRealSuitesSmoke:
    """The actual micro benchmarks, at trivially small sizes."""

    def test_micro_benchmarks_report_events_and_rate(self):
        from repro.bench.micro import (
            cohort_dispatch,
            condition_fanin,
            event_relay,
            timeout_churn,
        )

        for entry in (
            timeout_churn(processes=2, iterations=5),
            event_relay(pairs=1, laps=3),
            condition_fanin(iterations=4, fan=2),
            cohort_dispatch(width=8, heap_width=4, rounds=3),
        ):
            assert entry["events"] > 0
            assert entry["wall_s"] >= 0
            assert entry["events_per_s"] > 0

    def test_disk_benchmark_reports_both_paths(self):
        from repro.bench.diskperf import service_batch

        entry = service_batch(batch_size=8, evaluations=2)
        assert entry["requests"] == 16
        assert entry["requests_per_s"] > 0
        assert entry["scalar_requests_per_s"] > 0

    def test_registry_names_match_modules(self):
        names = benchmark_names()
        assert names == sorted(names, key=names.index)  # stable, micro first
        assert any(name.startswith("kernel.") for name in names)
        assert any(name.startswith("macro.") for name in names)

    def test_environment_fingerprint_has_required_keys(self):
        from repro.bench.envinfo import environment_fingerprint

        fingerprint = environment_fingerprint()
        for key in ("python", "implementation", "platform", "cpu_count"):
            assert key in fingerprint
