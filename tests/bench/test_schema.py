"""Structural validation of repro-bench/1 documents."""

import pytest

from repro.bench.schema import (
    SCHEMA_ID,
    BenchSchemaError,
    throughput_metrics,
    validate_document,
)


def minimal_document():
    return {
        "schema": SCHEMA_ID,
        "generated_at": "2026-01-01T00:00:00+00:00",
        "environment": {
            "python": "3.12.0",
            "implementation": "CPython",
            "platform": "linux",
            "cpu_count": 8,
        },
        "scale": "tiny",
        "repeat": 3,
        "results": {
            "kernel.timeout_churn": {
                "events": 1000.0,
                "wall_s": 0.5,
                "events_per_s": 2000.0,
            },
            "macro.sweep": {"points": 4.0, "wall_s": 1.5, "points_per_s": 2.7},
        },
    }


class TestValidateDocument:
    def test_minimal_document_is_valid(self):
        validate_document(minimal_document())

    def test_extra_top_level_fields_are_allowed(self):
        document = minimal_document()
        document["baseline_comparison"] = {"note": "speedups vs pre-opt"}
        validate_document(document)

    @pytest.mark.parametrize(
        "missing", ["schema", "generated_at", "environment", "scale", "repeat", "results"]
    )
    def test_missing_top_level_field_rejected(self, missing):
        document = minimal_document()
        del document[missing]
        with pytest.raises(BenchSchemaError):
            validate_document(document)

    def test_wrong_schema_id_rejected(self):
        document = minimal_document()
        document["schema"] = "repro-bench/0"
        with pytest.raises(BenchSchemaError):
            validate_document(document)

    @pytest.mark.parametrize(
        "missing", ["python", "implementation", "platform", "cpu_count"]
    )
    def test_missing_environment_field_rejected(self, missing):
        document = minimal_document()
        del document["environment"][missing]
        with pytest.raises(BenchSchemaError):
            validate_document(document)

    def test_empty_results_rejected(self):
        document = minimal_document()
        document["results"] = {}
        with pytest.raises(BenchSchemaError):
            validate_document(document)

    def test_result_without_wall_s_rejected(self):
        document = minimal_document()
        document["results"]["kernel.timeout_churn"] = {"events_per_s": 1.0}
        with pytest.raises(BenchSchemaError):
            validate_document(document)

    def test_non_numeric_result_field_rejected(self):
        document = minimal_document()
        document["results"]["macro.sweep"]["points"] = "four"
        with pytest.raises(BenchSchemaError):
            validate_document(document)

    def test_boolean_masquerading_as_number_rejected(self):
        document = minimal_document()
        document["results"]["macro.sweep"]["points"] = True
        with pytest.raises(BenchSchemaError):
            validate_document(document)

    def test_negative_wall_clock_rejected(self):
        document = minimal_document()
        document["results"]["macro.sweep"]["wall_s"] = -0.1
        with pytest.raises(BenchSchemaError):
            validate_document(document)


class TestThroughputMetrics:
    def test_extracts_only_rate_fields(self):
        rates = throughput_metrics(minimal_document()["results"])
        assert rates == {
            "kernel.timeout_churn:events_per_s": 2000.0,
            "macro.sweep:points_per_s": 2.7,
        }

    def test_wall_clock_only_entries_contribute_nothing(self):
        assert throughput_metrics({"macro.campaign": {"wall_s": 3.0}}) == {}
