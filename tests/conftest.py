"""Shared fixtures and builders for the test suite.

Most array tests run on a 5-disk, G=4 declustered array (the paper's
Figure 2-3 configuration) over a 10-cylinder disk: big enough to hold
dozens of full layout tables, small enough that whole-array
reconstructions finish in well under a second of wall-clock time.
"""

from __future__ import annotations

from dataclasses import dataclass

import pytest

from repro.array import ArrayAddressing, ArrayController
from repro.designs import boolean_quadruple_system, complete_design, paper_design
from repro.disk import scaled_spec
from repro.layout import (
    CyclicDualRaid6Layout,
    DeclusteredLayout,
    DualDeclusteredLayout,
    LeftSymmetricRaid5Layout,
)
from repro.recon.algorithms import BASELINE
from repro.sim import Environment


@dataclass
class ArrayUnderTest:
    """One assembled simulated array plus its environment."""

    env: Environment
    controller: ArrayController
    addressing: ArrayAddressing

    @property
    def layout(self):
        return self.addressing.layout

    def run_op(self, event):
        """Run the simulation until one controller event completes."""
        return self.env.run(until=event)


def build_array(
    num_disks: int = 5,
    stripe_size: int = 4,
    cylinders: int = 10,
    algorithm=BASELINE,
    with_datastore: bool = True,
    policy: str = "cvscan",
    fault_profile=None,
    retry_policy=None,
) -> ArrayUnderTest:
    """Assemble a small array for tests."""
    env = Environment()
    if stripe_size == num_disks:
        layout = LeftSymmetricRaid5Layout(num_disks)
    elif num_disks == 21:
        layout = DeclusteredLayout(paper_design(stripe_size))
    else:
        layout = DeclusteredLayout(complete_design(num_disks, stripe_size))
    addressing = ArrayAddressing(layout, scaled_spec(cylinders))
    controller = ArrayController(
        env, addressing, policy=policy, algorithm=algorithm,
        with_datastore=with_datastore,
        fault_profile=fault_profile, retry_policy=retry_policy,
    )
    return ArrayUnderTest(env=env, controller=controller, addressing=addressing)


def build_dual_array(
    num_disks: int = 8,
    cylinders: int = 10,
    algorithm=BASELINE,
    with_datastore: bool = True,
    policy: str = "cvscan",
    fault_profile=None,
    retry_policy=None,
) -> ArrayUnderTest:
    """Assemble a small dual-syndrome (P+Q) array for tests.

    8 disks get the declustered SQS(8) layout (G=4, triple-balanced);
    any other count gets the full-width cyclic RAID-6 rotation.
    """
    env = Environment()
    if num_disks == 8:
        layout = DualDeclusteredLayout(boolean_quadruple_system(3))
    else:
        layout = CyclicDualRaid6Layout(num_disks)
    addressing = ArrayAddressing(layout, scaled_spec(cylinders))
    controller = ArrayController(
        env, addressing, policy=policy, algorithm=algorithm,
        with_datastore=with_datastore,
        fault_profile=fault_profile, retry_policy=retry_policy,
    )
    return ArrayUnderTest(env=env, controller=controller, addressing=addressing)


@pytest.fixture
def small_array() -> ArrayUnderTest:
    """A fresh 5-disk G=4 declustered array with a data store."""
    return build_array()


@pytest.fixture
def dual_array() -> ArrayUnderTest:
    """A fresh 8-disk G=4 dual-syndrome declustered array."""
    return build_dual_array()


@pytest.fixture
def raid5_array() -> ArrayUnderTest:
    """A fresh 5-disk RAID 5 array with a data store."""
    return build_array(stripe_size=5)


def total_disk_accesses(controller: ArrayController) -> int:
    """Disk accesses completed so far across the whole array."""
    return sum(disk.stats.completed for disk in controller.disks)
