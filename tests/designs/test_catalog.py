"""Unit tests for the design catalog and its selection policy."""

import pytest

from repro.designs import DesignCatalog, DesignError, default_catalog
from repro.designs.catalog import CatalogEntry
from repro.designs.complete import complete_design
from repro.designs.paper import PAPER_DESIGN_PARAMETERS


class TestDefaultCatalog:
    def test_paper_designs_are_present(self):
        catalog = default_catalog()
        for g, (b, v, k, _r, _lam) in PAPER_DESIGN_PARAMETERS.items():
            if g == 18:
                continue  # complete-design fallback case
            design = catalog.exact(v, k)
            assert design is not None
            assert design.b == b

    def test_exact_miss_returns_none(self):
        assert default_catalog().exact(21, 7) is None

    def test_exact_results_are_cached(self):
        catalog = default_catalog()
        assert catalog.exact(21, 4) is catalog.exact(21, 4)

    def test_select_prefers_registered_over_complete(self):
        # (21, 18): the complete design has 1330 tuples, the registered
        # complement design only 70.
        design = default_catalog().select(21, 18)
        assert design.b < 1330

    def test_select_falls_back_to_complete(self):
        design = default_catalog().select(9, 7)  # no registered (9, 7)
        assert design.b == 36
        design.validate()

    def test_select_closest_alpha_when_infeasible(self):
        # (21, 8) has no registered design and C(21, 8) is too large;
        # nearest feasible alphas are 0.25 (G=6) and 0.45 (G=10).
        design = default_catalog().select(21, 8)
        assert design.k in (6, 10)

    def test_select_bounds_checked(self):
        with pytest.raises(DesignError):
            default_catalog().select(5, 1)
        with pytest.raises(DesignError):
            default_catalog().select(5, 6)

    def test_every_entry_constructs_and_validates(self):
        # The whole catalog must be made of genuine BIBDs.
        for entry in default_catalog().entries():
            design = default_catalog().exact(entry.v, entry.k)
            assert design is not None
            design.validate()
            assert design.b == entry.b, entry

    def test_catalog_covers_a_broad_alpha_range_on_21_disks(self):
        alphas = sorted(
            entry.alpha() for entry in default_catalog().entries() if entry.v == 21
        )
        assert alphas[0] <= 0.11
        assert alphas[-1] >= 0.84


class TestRegistration:
    def test_smaller_b_wins(self):
        catalog = DesignCatalog()
        catalog.register(7, 3, b=7, source="good", factory=lambda: complete_design(7, 3))
        catalog.register(7, 3, b=35, source="bigger", factory=lambda: complete_design(7, 3))
        assert catalog.entries()[0].source == "good"

    def test_replacement_by_smaller(self):
        catalog = DesignCatalog()
        catalog.register(7, 3, b=35, source="big", factory=lambda: complete_design(7, 3))
        catalog.register(7, 3, b=7, source="small", factory=lambda: complete_design(7, 3))
        assert catalog.entries()[0].b == 7

    def test_entry_alpha(self):
        entry = CatalogEntry(v=21, k=5, b=21, source="x")
        assert entry.alpha() == pytest.approx(0.2)

    def test_feasible_ks_includes_small_complete(self):
        catalog = DesignCatalog(max_table_tuples=100)
        assert 2 in catalog.feasible_ks(10)
        assert 5 not in catalog.feasible_ks(10)  # C(10,5) = 252 > 100
