"""Unit tests for complete block designs."""

import math

import pytest

from repro.designs import DesignError, complete_design
from repro.designs.complete import complete_design_size


class TestCompleteDesign:
    def test_size_formula(self):
        assert complete_design_size(5, 4) == 5
        assert complete_design_size(21, 18) == math.comb(21, 18)

    def test_matches_paper_figure_4_1(self):
        design = complete_design(5, 4)
        assert design.tuples == (
            (0, 1, 2, 3),
            (0, 1, 2, 4),
            (0, 1, 3, 4),
            (0, 2, 3, 4),
            (1, 2, 3, 4),
        )

    def test_parameters(self):
        design = complete_design(5, 4)
        assert (design.b, design.r, design.lam) == (5, 4, 3)

    def test_always_balanced(self):
        for v, k in [(4, 2), (6, 3), (7, 5), (9, 4)]:
            complete_design(v, k).validate()

    def test_k_equals_v(self):
        design = complete_design(4, 4)
        assert design.b == 1
        design.validate()

    def test_size_limit_enforced(self):
        with pytest.raises(DesignError, match="exceeding"):
            complete_design(41, 5, max_tuples=100_000)

    def test_invalid_k_rejected(self):
        with pytest.raises(DesignError):
            complete_design(5, 1)
        with pytest.raises(DesignError):
            complete_design(5, 6)
