"""Unit tests for derived and complement designs."""

import pytest

from repro.designs import (
    DesignError,
    complement_design,
    complete_design,
    cyclic_design,
    derived_design,
    quadratic_residue_design,
)


class TestDerivedDesign:
    def test_parameters_follow_the_paper_formula(self):
        # b' = b-1, v' = k, k' = lam, r' = r-1, lam' = lam-1.
        symmetric = quadratic_residue_design(23)  # (23, 11, 5)
        derived = derived_design(symmetric)
        assert derived.b == 22
        assert derived.v == 11
        assert derived.k == 5
        assert derived.r == 10
        assert derived.lam == 4

    def test_paper_bd5_shape(self):
        symmetric = quadratic_residue_design(43)  # (43, 21, 10)
        derived = derived_design(symmetric)
        assert (derived.b, derived.v, derived.k, derived.r, derived.lam) == (
            42, 21, 10, 20, 9,
        )

    def test_derived_is_balanced(self):
        derived_design(quadratic_residue_design(19)).validate()

    def test_any_base_index_works(self):
        symmetric = quadratic_residue_design(11)
        for base_index in (0, 3, 10):
            derived_design(symmetric, base_index=base_index).validate()

    def test_non_symmetric_rejected(self):
        with pytest.raises(DesignError, match="symmetric"):
            derived_design(complete_design(5, 3))

    def test_base_index_out_of_range_rejected(self):
        with pytest.raises(DesignError, match="base_index"):
            derived_design(quadratic_residue_design(11), base_index=11)

    def test_lam_too_small_rejected(self):
        fano = cyclic_design([[1, 2, 4]], modulus=7)  # lam = 1
        with pytest.raises(DesignError, match="lam"):
            derived_design(fano)


class TestComplementDesign:
    def test_parameters(self):
        # (v, b, r, k, lam) -> (v, b, b-r, v-k, b-2r+lam)
        fano = cyclic_design([[1, 2, 4]], modulus=7)
        comp = complement_design(fano)
        assert comp.v == 7
        assert comp.b == 7
        assert comp.k == 4
        assert comp.r == 4
        assert comp.lam == 2

    def test_complement_is_balanced(self):
        complement_design(complete_design(6, 2)).validate()

    def test_fills_the_large_alpha_gap(self):
        # Complement of the paper's alpha=0.2 design: a small alpha=0.75
        # design, which the paper's future-work section calls unknown.
        from repro.designs import paper_design

        comp = complement_design(paper_design(5))
        assert comp.v == 21
        assert comp.k == 16
        assert comp.b == 21
        assert comp.alpha() == pytest.approx(0.75)

    def test_double_complement_restores_parameters(self):
        fano = cyclic_design([[1, 2, 4]], modulus=7)
        twice = complement_design(complement_design(fano))
        assert (twice.v, twice.b, twice.k, twice.r, twice.lam) == (
            fano.v, fano.b, fano.k, fano.r, fano.lam,
        )

    def test_tiny_complement_rejected(self):
        nearly_full = complete_design(4, 3)
        with pytest.raises(DesignError, match="size"):
            complement_design(nearly_full)


class TestDeterministicOrdering:
    """Regression tests pinning tuple ordering (simlint DET004).

    Design tuples feed layout tables and, through them, every cached
    sweep result — two runs must emit byte-identical tuples.
    """

    def test_derived_tuples_are_reproducible(self):
        first = derived_design(quadratic_residue_design(11))
        second = derived_design(quadratic_residue_design(11))
        assert first.tuples == second.tuples

    def test_derived_relabelling_follows_base_tuple_order(self):
        # The base tuple's elements map to 0..k-1 in the order they
        # appear in the base tuple, so every intersection is expressed
        # in a deterministic labelling, not set-iteration order.
        symmetric = quadratic_residue_design(11)
        base = symmetric.tuples[0]
        relabel = {obj: i for i, obj in enumerate(base)}
        derived = derived_design(symmetric)
        for original, intersection in zip(symmetric.tuples[1:], derived.tuples):
            expected = tuple(
                relabel[obj] for obj in original if obj in set(base)
            )
            assert intersection == expected

    def test_complement_tuples_are_ascending(self):
        comp = complement_design(quadratic_residue_design(11))
        for t in comp.tuples:
            assert t == tuple(sorted(t))

    def test_complement_tuples_are_reproducible(self):
        first = complement_design(complete_design(6, 2))
        second = complement_design(complete_design(6, 2))
        assert first.tuples == second.tuples
