"""Unit tests for the BlockDesign type and its validation."""

import pytest

from repro.designs import BlockDesign, DesignError

FANO = BlockDesign(
    v=7,
    tuples=((0, 1, 3), (1, 2, 4), (2, 3, 5), (3, 4, 6), (4, 5, 0), (5, 6, 1), (6, 0, 2)),
    name="fano",
)


class TestParameters:
    def test_fano_parameters(self):
        assert (FANO.b, FANO.v, FANO.k, FANO.r, FANO.lam) == (7, 7, 3, 3, 1)

    def test_alpha(self):
        assert FANO.alpha() == pytest.approx(2 / 6)

    def test_counting_identities(self):
        assert FANO.b * FANO.k == FANO.v * FANO.r
        assert FANO.r * (FANO.k - 1) == FANO.lam * (FANO.v - 1)

    def test_is_symmetric(self):
        assert FANO.is_symmetric()

    def test_summary_mentions_all_parameters(self):
        text = FANO.summary()
        for fragment in ("b=7", "v=7", "k=3", "r=3", "lam=1"):
            assert fragment in text


class TestValidation:
    def test_fano_is_balanced(self):
        assert FANO.is_balanced()
        FANO.validate()  # no exception

    def test_replication_counts(self):
        assert FANO.replication_counts() == [3] * 7

    def test_pair_counts_all_one(self):
        assert set(FANO.pair_counts().values()) == {1}

    def test_unbalanced_replication_detected(self):
        lopsided = BlockDesign(v=4, tuples=((0, 1), (0, 2), (0, 3)))
        with pytest.raises(DesignError, match="appear"):
            lopsided.validate()

    def test_unbalanced_pairs_detected(self):
        # Every object appears twice but pair (0,1) twice, (0,2) never.
        design = BlockDesign(v=4, tuples=((0, 1), (1, 0), (2, 3), (3, 2)))
        with pytest.raises(DesignError, match="pair"):
            design.validate()

    def test_indivisible_bk_detected(self):
        design = BlockDesign(v=3, tuples=((0, 1), (1, 2)))
        with pytest.raises(DesignError, match="divisible"):
            design.validate()


class TestConstructionErrors:
    def test_empty_tuples_rejected(self):
        with pytest.raises(DesignError):
            BlockDesign(v=3, tuples=())

    def test_nonuniform_tuple_sizes_rejected(self):
        with pytest.raises(DesignError, match="non-uniform"):
            BlockDesign(v=4, tuples=((0, 1), (0, 1, 2)))

    def test_repeated_object_in_tuple_rejected(self):
        with pytest.raises(DesignError, match="repeats"):
            BlockDesign(v=4, tuples=((0, 0, 1),))

    def test_object_out_of_range_rejected(self):
        with pytest.raises(DesignError, match="outside"):
            BlockDesign(v=3, tuples=((0, 5),))

    def test_singleton_tuples_rejected(self):
        with pytest.raises(DesignError, match="at least 2"):
            BlockDesign(v=3, tuples=((0,), (1,)))

    def test_tuple_larger_than_v_rejected(self):
        with pytest.raises(DesignError):
            BlockDesign(v=2, tuples=((0, 1, 1),))


class TestRelabel:
    def test_relabel_preserves_structure(self):
        mapping = {i: (i + 1) % 7 for i in range(7)}
        rotated = FANO.relabeled(mapping, v=7)
        rotated.validate()
        assert rotated.tuples[0] == (1, 2, 4)
