"""Unit tests for the difference-method (cyclic) construction."""

import pytest

from repro.designs import DesignError, cyclic_design
from repro.designs.difference import BaseBlock, develop_base_blocks


class TestDevelopment:
    def test_full_orbit_count(self):
        design = cyclic_design([[1, 2, 4]], modulus=7)
        assert design.b == 7

    def test_shift_arithmetic(self):
        design = cyclic_design([[1, 2, 4]], modulus=7)
        assert design.tuples[0] == (1, 2, 4)
        assert design.tuples[1] == (2, 3, 5)
        assert design.tuples[6] == (0, 1, 3)

    def test_period_limits_orbit(self):
        # [0, 7, 14] mod 21 is invariant under +7: period 7.
        design = develop_base_blocks(
            [BaseBlock(elements=(0, 7, 14), period=7)], modulus=21
        )
        assert design.b == 7
        assert design.tuples[-1] == (6, 13, 20)

    def test_mixed_periods(self):
        design = cyclic_design(
            [[0, 1, 3], [0, 4, 12], [0, 5, 11], [0, 7, 14]],
            modulus=21,
            periods=[None, None, None, 7],
        )
        assert design.b == 3 * 21 + 7

    def test_fano_difference_set_is_balanced(self):
        cyclic_design([[1, 2, 4]], modulus=7).validate()

    def test_invalid_family_rejected_by_default(self):
        # [0, 1, 2] mod 7 covers difference 1 twice and 4 never.
        with pytest.raises(DesignError):
            cyclic_design([[0, 1, 2]], modulus=7)

    def test_invalid_family_allowed_without_validation(self):
        design = cyclic_design([[0, 1, 2]], modulus=7, validate=False)
        assert design.b == 7
        assert not design.is_balanced()

    def test_periods_length_mismatch_rejected(self):
        with pytest.raises(DesignError, match="periods"):
            cyclic_design([[1, 2, 4]], modulus=7, periods=[None, None])

    def test_bad_modulus_rejected(self):
        with pytest.raises(DesignError):
            develop_base_blocks([BaseBlock(elements=(0, 1))], modulus=1)

    def test_bad_period_rejected(self):
        with pytest.raises(DesignError, match="period"):
            develop_base_blocks(
                [BaseBlock(elements=(0, 1, 2), period=10)], modulus=7
            )

    def test_elements_reduced_modulo(self):
        design = cyclic_design([[8, 9, 11]], modulus=7, validate=False)
        assert design.tuples[0] == (1, 2, 4)
