"""Unit tests for the programmatic design families."""

import pytest

from repro.designs import (
    DesignError,
    affine_plane,
    projective_plane,
    quadratic_residue_design,
)
from repro.designs.families import is_prime, quadratic_residues


class TestPrimality:
    def test_small_primes(self):
        primes = [n for n in range(30) if is_prime(n)]
        assert primes == [2, 3, 5, 7, 11, 13, 17, 19, 23, 29]

    def test_larger_composites(self):
        assert not is_prime(91)   # 7 * 13
        assert not is_prime(221)  # 13 * 17


class TestQuadraticResidues:
    def test_residues_mod_7(self):
        assert quadratic_residues(7) == [1, 2, 4]

    def test_residue_count(self):
        for p in (7, 11, 19, 23, 43):
            assert len(quadratic_residues(p)) == (p - 1) // 2

    def test_non_prime_rejected(self):
        with pytest.raises(DesignError):
            quadratic_residues(15)

    @pytest.mark.parametrize("p", [7, 11, 19, 23, 31, 43, 47])
    def test_qr_design_parameters_and_balance(self, p):
        design = quadratic_residue_design(p)
        assert design.v == p
        assert design.k == (p - 1) // 2
        assert design.lam == (p - 3) // 4
        design.validate()

    def test_wrong_residue_class_rejected(self):
        with pytest.raises(DesignError, match="mod 4"):
            quadratic_residue_design(13)  # 13 ≡ 1 (mod 4)


class TestProjectivePlane:
    @pytest.mark.parametrize("q", [2, 3, 5, 7])
    def test_parameters_and_balance(self, q):
        design = projective_plane(q)
        assert design.v == q * q + q + 1
        assert design.b == design.v
        assert design.k == q + 1
        assert design.lam == 1
        design.validate()

    def test_fano_is_pg2_2(self):
        assert projective_plane(2).v == 7

    def test_non_prime_order_rejected(self):
        with pytest.raises(DesignError):
            projective_plane(4)


class TestAffinePlane:
    @pytest.mark.parametrize("q", [2, 3, 5, 7])
    def test_parameters_and_balance(self, q):
        design = affine_plane(q)
        assert design.v == q * q
        assert design.b == q * q + q
        assert design.k == q
        assert design.r == q + 1
        assert design.lam == 1
        design.validate()

    def test_non_prime_order_rejected(self):
        with pytest.raises(DesignError):
            affine_plane(6)
