"""Unit tests for the registered difference families."""

import pytest

from repro.designs import default_catalog
from repro.designs.known_families import KNOWN_FAMILIES, known_family_design


class TestKnownFamilies:
    @pytest.mark.parametrize("key", sorted(KNOWN_FAMILIES))
    def test_every_family_is_a_valid_bibd(self, key):
        v, k = key
        design = known_family_design(v, k)
        assert design.v == v
        assert design.k == k
        design.validate()

    def test_steiner_triples_have_lam_one(self):
        for v in (13, 15, 19, 25, 31, 37):
            assert known_family_design(v, 3).lam == 1

    def test_short_orbit_family(self):
        design = known_family_design(15, 3)
        assert design.b == 35  # 15 + 15 + 5 (period-5 orbit)

    def test_unknown_key_raises(self):
        with pytest.raises(KeyError):
            known_family_design(99, 3)

    def test_families_reach_the_catalog(self):
        catalog = default_catalog()
        design = catalog.exact(19, 3)
        assert design is not None
        assert design.b == 57  # the family, not C(19,3) = 969

    def test_catalog_prefers_smaller_designs(self):
        # (13, 4): PG(2,3) cyclic family (b=13) must beat the projective
        # plane construction registered by the algebraic families
        # (b=13 as well) and the complete design (b=715).
        design = default_catalog().exact(13, 4)
        assert design.b == 13

    def test_families_build_working_layouts(self):
        from repro.layout import DeclusteredLayout, evaluate_layout

        layout = DeclusteredLayout(known_family_design(13, 3))
        reports = {r.name: r for r in evaluate_layout(layout)}
        assert reports["distributed-reconstruction"].passed
        assert reports["distributed-parity"].passed
