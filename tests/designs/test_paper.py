"""The six appendix designs must match the paper's stated parameters."""

import pytest

from repro.designs import DesignError, paper_design
from repro.designs.paper import PAPER_DESIGN_ALPHAS, PAPER_DESIGN_PARAMETERS


class TestPaperDesigns:
    @pytest.mark.parametrize("g", sorted(PAPER_DESIGN_PARAMETERS))
    def test_parameters_match_appendix(self, g):
        b, v, k, r, lam = PAPER_DESIGN_PARAMETERS[g]
        design = paper_design(g)
        assert (design.b, design.v, design.k, design.r, design.lam) == (b, v, k, r, lam)

    @pytest.mark.parametrize("g", sorted(PAPER_DESIGN_PARAMETERS))
    def test_designs_are_balanced(self, g):
        paper_design(g).validate()

    @pytest.mark.parametrize("g", sorted(PAPER_DESIGN_PARAMETERS))
    def test_alphas_match_table(self, g):
        design = paper_design(g)
        assert design.alpha() == pytest.approx(PAPER_DESIGN_ALPHAS[g], abs=0.005)

    def test_bd3_is_the_printed_perfect_difference_set(self):
        design = paper_design(5)
        assert design.tuples[0] == (3, 6, 7, 12, 14)

    def test_bd1_uses_the_short_orbit(self):
        design = paper_design(3)
        short_orbit_tuples = [t for t in design.tuples if set(t) == {t[0], (t[0] + 7) % 21, (t[0] + 14) % 21}]
        assert len(short_orbit_tuples) == 7

    def test_unknown_g_rejected(self):
        with pytest.raises(DesignError, match="no appendix design"):
            paper_design(7)

    def test_raid5_case_rejected(self):
        with pytest.raises(DesignError):
            paper_design(21)

    def test_alpha_table_includes_raid5(self):
        assert PAPER_DESIGN_ALPHAS[21] == 1.0
