"""Property-based tests for block design invariants."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.designs import complement_design, complete_design, quadratic_residue_design
from repro.designs.derived import derived_design
from repro.designs.families import is_prime


@st.composite
def complete_design_params(draw):
    v = draw(st.integers(min_value=3, max_value=9))
    k = draw(st.integers(min_value=2, max_value=v - 1))
    return v, k


class TestCompleteDesignProperties:
    @given(complete_design_params())
    @settings(max_examples=40, deadline=None)
    def test_complete_designs_are_always_balanced(self, params):
        v, k = params
        complete_design(v, k).validate()

    @given(complete_design_params())
    @settings(max_examples=40, deadline=None)
    def test_counting_identities_hold(self, params):
        v, k = params
        design = complete_design(v, k)
        assert design.b * design.k == design.v * design.r
        assert design.r * (design.k - 1) == design.lam * (design.v - 1)

    @given(complete_design_params())
    @settings(max_examples=20, deadline=None)
    def test_complement_of_complete_is_balanced(self, params):
        v, k = params
        if v - k < 2:
            return
        complement_design(complete_design(v, k)).validate()


QR_PRIMES = [p for p in range(7, 60) if is_prime(p) and p % 4 == 3]


class TestQrDesignProperties:
    @given(st.sampled_from(QR_PRIMES))
    @settings(max_examples=len(QR_PRIMES), deadline=None)
    def test_qr_designs_are_symmetric_and_balanced(self, p):
        design = quadratic_residue_design(p)
        assert design.is_symmetric()
        design.validate()

    @given(st.sampled_from([p for p in QR_PRIMES if (p - 3) // 4 >= 2]))
    @settings(max_examples=10, deadline=None)
    def test_derived_designs_are_balanced(self, p):
        derived_design(quadratic_residue_design(p)).validate()

    @given(
        st.sampled_from([p for p in QR_PRIMES if (p - 3) // 4 >= 2]),
        st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=15, deadline=None)
    def test_derived_base_choice_never_changes_parameters(self, p, raw_index):
        symmetric = quadratic_residue_design(p)
        base_index = raw_index % symmetric.b
        derived = derived_design(symmetric, base_index=base_index)
        assert derived.v == symmetric.k
        assert derived.k == symmetric.lam
        assert derived.b == symmetric.b - 1
