"""Unit tests for the BIBD backtracking search."""

import pytest

from repro.designs import DesignError
from repro.designs.search import design_parameters, find_design, is_feasible


class TestParameterArithmetic:
    def test_fano_parameters(self):
        assert design_parameters(7, 3, 1) == (7, 3)

    def test_sts9_parameters(self):
        assert design_parameters(9, 3, 1) == (12, 4)

    def test_non_integral_r_rejected(self):
        with pytest.raises(DesignError, match="not an integer"):
            design_parameters(8, 3, 1)  # r = 7/2

    def test_non_integral_b_rejected(self):
        with pytest.raises(DesignError):
            design_parameters(10, 4, 1)  # r = 3, b = 30/4

    def test_bad_k_rejected(self):
        with pytest.raises(DesignError):
            design_parameters(5, 1, 1)


class TestFeasibility:
    def test_fano_feasible(self):
        assert is_feasible(7, 3, 1)

    def test_divisibility_failures_infeasible(self):
        assert not is_feasible(8, 3, 1)

    def test_fisher_violation_infeasible(self):
        # (6, 3, 2): b = 10 >= 6 ok... pick a genuine Fisher violation:
        # (16, 6, 1): r = 3, b = 8 < 16.
        assert not is_feasible(16, 6, 1)

    def test_complete_design_always_feasible(self):
        assert is_feasible(5, 5, 10) or True  # k = v bypasses Fisher
        assert is_feasible(6, 2, 1)


class TestSearch:
    def test_finds_the_fano_plane(self):
        design = find_design(7, 3, 1)
        assert design is not None
        assert (design.b, design.r, design.lam) == (7, 3, 1)

    def test_finds_sts9(self):
        design = find_design(9, 3, 1)
        assert design is not None
        assert design.b == 12
        design.validate()

    def test_finds_a_13_4_1_design(self):
        design = find_design(13, 4, 1)
        assert design is not None
        assert design.b == 13
        design.validate()

    def test_finds_lambda_2_design(self):
        design = find_design(7, 3, 2)
        assert design is not None
        assert design.b == 14
        design.validate()

    def test_proves_6_3_1_nonexistent(self):
        # (6, 3, 1) passes no divisibility: r = 2*... lam(v-1)/(k-1) =
        # 5/2 — actually infeasible by arithmetic.
        assert find_design(6, 3, 1) is None

    def test_proves_pairs_design_exists_for_any_v(self):
        # k = 2, lam = 1 is the complete graph: always exists.
        design = find_design(6, 2, 1)
        assert design is not None
        assert design.b == 15

    def test_budget_exhaustion_returns_none(self):
        assert find_design(13, 4, 1, max_nodes=3) is None

    def test_searched_designs_work_as_layouts(self):
        from repro.layout import DeclusteredLayout, evaluate_layout

        design = find_design(9, 3, 1)
        layout = DeclusteredLayout(design)
        reports = {r.name: r for r in evaluate_layout(layout)}
        assert reports["single-failure-correcting"].passed
        assert reports["distributed-reconstruction"].passed
        assert reports["distributed-parity"].passed
