"""t-design validation, boolean SQS, and cyclic P+Q constructions."""

import pytest

from repro.designs import complete_design, paper_design
from repro.designs.design import DesignError
from repro.designs.tdesigns import (
    PLANAR_DIFFERENCE_SETS,
    boolean_quadruple_system,
    cyclic_pq_design,
    is_t_balanced,
    t_lambda,
    t_subset_counts,
    validate_t_design,
)


class TestValidation:
    def test_complete_design_is_t_balanced_for_all_t(self):
        design = complete_design(7, 4)
        for t in range(1, 5):
            assert validate_t_design(design, t) == t_lambda(design, t)

    def test_paper_bibd_is_pair_but_not_triple_balanced(self):
        design = paper_design(5)  # (b=21, v=21, k=5, lam=1)
        assert is_t_balanced(design, 2)
        assert not is_t_balanced(design, 3)

    def test_t_lambda_by_double_counting(self):
        design = complete_design(6, 3)  # b = 20
        assert t_lambda(design, 1) == design.r
        assert t_lambda(design, 2) == design.lam
        assert t_lambda(design, 3) == 1

    def test_subset_counts_cover_all_subsets(self):
        design = complete_design(5, 3)
        counts = t_subset_counts(design, 3)
        assert len(counts) == 10
        assert set(counts.values()) == {1}

    def test_t_out_of_range_rejected(self):
        design = complete_design(5, 3)
        with pytest.raises(DesignError):
            t_subset_counts(design, 0)
        with pytest.raises(DesignError):
            t_subset_counts(design, 4)


class TestBooleanQuadrupleSystem:
    def test_sqs8_parameters(self):
        design = boolean_quadruple_system(3)
        assert (design.v, design.k, design.b) == (8, 4, 14)

    def test_sqs8_is_a_3_design(self):
        design = boolean_quadruple_system(3)
        assert validate_t_design(design, 3) == 1
        design.validate()  # also a BIBD (lam = 3)
        assert design.lam == 3

    def test_sqs16_is_a_3_design(self):
        design = boolean_quadruple_system(4)
        assert (design.v, design.b) == (16, 140)
        assert validate_t_design(design, 3) == 1

    def test_tuples_xor_to_zero(self):
        for tup in boolean_quadruple_system(3).tuples:
            value = 0
            for element in tup:
                value ^= element
            assert value == 0

    def test_m_below_three_rejected(self):
        with pytest.raises(DesignError):
            boolean_quadruple_system(2)


class TestCyclicPQ:
    @pytest.mark.parametrize("k", sorted(PLANAR_DIFFERENCE_SETS))
    def test_planar_sets_develop_to_lam1_bibds(self, k):
        design = cyclic_pq_design(k)
        v = k * k - k + 1
        assert (design.v, design.k, design.b, design.lam) == (v, k, v, 1)
        design.validate()

    def test_placement_is_cyclic_shift(self):
        design = cyclic_pq_design(5)
        base = design.tuples[0]
        for i, tup in enumerate(design.tuples):
            assert tup == tuple((e + i) % design.v for e in base)

    def test_unknown_k_rejected(self):
        with pytest.raises(DesignError):
            cyclic_pq_design(7)
