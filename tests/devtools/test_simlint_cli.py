"""CLI tests, including the acceptance gates: the repo lints clean
under its checked-in baseline, and introducing any rule's positive
fixture makes the exit code non-zero."""

import json
import pathlib
import textwrap

import pytest

from repro.cli import main as repro_main
from repro.devtools.simlint import all_rules
from repro.devtools.simlint.cli import main as lint_main

from tests.devtools.test_simlint_rules import FIXTURES

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]


class TestExitCodes:
    def test_clean_tree_exits_zero(self, tmp_path):
        (tmp_path / "ok.py").write_text("x = 1\n")
        assert lint_main([str(tmp_path), "--no-baseline"]) == 0

    @pytest.mark.parametrize(
        "rule,snippet",
        [(rule, positives[0]) for rule, positives, _neg in FIXTURES],
    )
    def test_each_rules_positive_fixture_fails_the_build(
        self, tmp_path, rule, snippet
    ):
        (tmp_path / "bad.py").write_text(textwrap.dedent(snippet))
        assert lint_main([str(tmp_path), "--no-baseline"]) == 1

    def test_usage_error_exits_two(self, tmp_path, capsys):
        assert lint_main([str(tmp_path / "missing"), "--no-baseline"]) == 2
        assert "error" in capsys.readouterr().err

    def test_unknown_rule_exits_two(self, tmp_path):
        (tmp_path / "ok.py").write_text("x = 1\n")
        assert lint_main([str(tmp_path), "--select", "NOPE1"]) == 2

    def test_missing_baseline_file_exits_two(self, tmp_path):
        (tmp_path / "ok.py").write_text("x = 1\n")
        assert (
            lint_main([str(tmp_path), "--baseline", str(tmp_path / "nope.json")])
            == 2
        )

    def test_explicit_non_python_file_exits_two(self, tmp_path, capsys):
        notes = tmp_path / "notes.txt"
        notes.write_text("not python\n")
        assert lint_main([str(notes), "--no-baseline"]) == 2
        assert "not a Python file" in capsys.readouterr().err

    def test_project_rule_without_project_flag_exits_two(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x = 1\n")
        assert lint_main([str(tmp_path), "--select", "LOCK010"]) == 2
        assert "--project" in capsys.readouterr().err

    def test_runtime_rule_selection_exits_two(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x = 1\n")
        assert lint_main([str(tmp_path), "--select", "SAN002", "--project"]) == 2
        assert "simsan" in capsys.readouterr().err


class TestProjectMode:
    HANDOFF = textwrap.dedent(
        """
        class Cache:
            def read(self, stripe):
                # simlint: disable=LOCK001 (handed to the spawned closer)
                yield self.locks.acquire(stripe)
                self.env.process(self._finish(stripe))

            def _finish(self, stripe):
                if stripe < 0:
                    return
                yield self.env.timeout(1.0)
                self.locks.release(stripe)
        """
    )

    def test_project_flag_finds_the_handoff_leak(self, tmp_path, capsys):
        (tmp_path / "handoff.py").write_text(self.HANDOFF)
        assert lint_main([str(tmp_path), "--no-baseline"]) == 0
        capsys.readouterr()
        assert lint_main([str(tmp_path), "--no-baseline", "--project"]) == 1
        out = capsys.readouterr().out
        assert "LOCK010" in out
        assert "_finish" in out

    def test_src_lints_clean_in_project_mode(self, monkeypatch, capsys):
        # Acceptance gate: the whole-program rules hold over the real
        # tree with no baseline at all.
        monkeypatch.chdir(REPO_ROOT)
        exit_code = lint_main(["src/repro", "--no-baseline", "--project"])
        assert exit_code == 0, capsys.readouterr().out

    def test_list_rules_shows_scopes(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "[error, project]" in out
        assert "[error, runtime]" in out


class TestOutputFormats:
    def test_sarif_output(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(
            "import time\n\ndef stamp():\n    return time.time()\n"
        )
        assert (
            lint_main([str(tmp_path), "--no-baseline", "--format", "sarif"])
            == 1
        )
        document = json.loads(capsys.readouterr().out)
        assert document["runs"][0]["results"][0]["ruleId"] == "DET001"

    def test_github_output(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(
            "import time\n\ndef stamp():\n    return time.time()\n"
        )
        assert (
            lint_main([str(tmp_path), "--no-baseline", "--format", "github"])
            == 1
        )
        out = capsys.readouterr().out
        assert out.startswith("::error file=")
        assert "title=simlint DET001::" in out


class TestRepoIsClean:
    """The acceptance criterion: `python -m repro lint` exits 0 here."""

    def test_src_lints_clean_with_checked_in_baseline(self, monkeypatch, capsys):
        monkeypatch.chdir(REPO_ROOT)
        exit_code = lint_main(["--format", "json"])
        document = json.loads(capsys.readouterr().out)
        assert exit_code == 0, document["findings"]
        assert document["summary"]["ok"] is True
        # Every baselined finding carries a human reason, not the TODO.
        for entry in document["baselined"]:
            assert entry["reason"]
            assert not entry["reason"].startswith("TODO")

    def test_checked_in_baseline_has_no_todo_or_stale_entries(
        self, monkeypatch, capsys
    ):
        monkeypatch.chdir(REPO_ROOT)
        document = json.loads(
            (REPO_ROOT / "simlint-baseline.json").read_text(encoding="utf-8")
        )
        for entry in document["entries"]:
            assert entry["reason"] and not entry["reason"].startswith("TODO")
        lint_main(["--format", "json"])
        report = json.loads(capsys.readouterr().out)
        assert report["stale_baseline"] == []

    def test_tests_tree_parses_under_lint(self, monkeypatch):
        # The test tree is not gated (fixtures intentionally violate
        # rules), but the engine must at least parse it without crashing.
        monkeypatch.chdir(REPO_ROOT)
        assert lint_main(["src/repro/devtools", "--no-baseline"]) == 0


class TestListAndWrite:
    def test_list_rules_names_every_rule(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in all_rules():
            assert rule.id in out

    def test_write_baseline_then_clean(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        (tmp_path / "bad.py").write_text(
            "import time\n\ndef stamp():\n    return time.time()\n"
        )
        assert lint_main([str(tmp_path), "--write-baseline"]) == 0
        capsys.readouterr()
        baseline = tmp_path / "simlint-baseline.json"
        assert baseline.exists()
        assert lint_main([str(tmp_path), "--baseline", str(baseline)]) == 0

    def test_no_baseline_overrides_default_file(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        (tmp_path / "bad.py").write_text(
            "import time\n\ndef stamp():\n    return time.time()\n"
        )
        assert lint_main([str(tmp_path), "--write-baseline"]) == 0
        assert lint_main([str(tmp_path)]) == 0
        assert lint_main([str(tmp_path), "--no-baseline"]) == 1


class TestReproEntryPoint:
    def test_python_m_repro_lint_dispatches(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x = 1\n")
        assert repro_main(["lint", str(tmp_path), "--no-baseline"]) == 0
        assert "simlint: 0 finding(s)" in capsys.readouterr().out

    def test_python_m_repro_lint_fails_on_violation(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(
            "import random\n\ndef draw():\n    return random.random()\n"
        )
        assert repro_main(["lint", str(tmp_path), "--no-baseline"]) == 1
        assert "DET002" in capsys.readouterr().out

    def test_experiment_cli_still_works(self, capsys):
        assert repro_main(["list"]) == 0
        assert "fig4-3" in capsys.readouterr().out


class TestSimsanEntryPoint:
    def test_unknown_scenario_exits_two(self, capsys):
        assert repro_main(["simsan", "nope"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_degraded_scenario_runs_clean(self, monkeypatch, capsys):
        # The cheapest real scenario end to end through the dispatcher:
        # instrumented run, static cross-check, zero violations.
        monkeypatch.chdir(REPO_ROOT)
        assert repro_main(["simsan", "degraded"]) == 0
        captured = capsys.readouterr()
        assert "degraded:" in captured.err
        assert "0 violation(s)" in captured.err
        assert "0 finding(s)" in captured.out
