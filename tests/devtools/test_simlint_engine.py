"""Engine-level tests: suppressions, baseline lifecycle, reporters,
rule selection, and determinism of the linter's own output."""

import json
import textwrap

import pytest

from repro.devtools.simlint import (
    Baseline,
    BaselineError,
    LintUsageError,
    format_github,
    format_json,
    format_sarif,
    format_text,
    iter_python_files,
    lint_paths,
    lint_source,
    load_baseline,
    write_baseline,
)
from repro.devtools.simlint.baseline import TODO_REASON

WALL_CLOCK = textwrap.dedent(
    """
    import time

    def stamp():
        return time.time()
    """
)


def write_module(tmp_path, name, code):
    path = tmp_path / name
    path.write_text(textwrap.dedent(code), encoding="utf-8")
    return path


class TestSuppressions:
    def test_inline_disable_with_reason(self):
        code = (
            "import time\n\n"
            "def stamp():\n"
            "    return time.time()  # simlint: disable=DET001 (log label only)\n"
        )
        (finding,) = lint_source(code)
        assert finding.suppressed
        assert finding.suppress_reason == "log label only"

    def test_inline_disable_without_reason(self):
        code = (
            "import time\n\n"
            "def stamp():\n"
            "    return time.time()  # simlint: disable=DET001\n"
        )
        (finding,) = lint_source(code)
        assert finding.suppressed

    def test_disable_only_covers_named_rule(self):
        code = (
            "import time, random\n\n"
            "def stamp():\n"
            "    return time.time()  # simlint: disable=DET002 (wrong rule)\n"
        )
        (finding,) = lint_source(code)
        assert not finding.suppressed

    def test_standalone_comment_covers_next_line(self):
        code = (
            "import time\n\n"
            "def stamp():\n"
            "    # simlint: disable=DET001 (measured outside the sim)\n"
            "    return time.time()\n"
        )
        (finding,) = lint_source(code)
        assert finding.suppressed

    def test_file_level_disable(self):
        code = (
            "# simlint: disable-file=DET001 (orchestration module)\n"
            "import time\n\n"
            "def stamp():\n"
            "    return time.time()\n\n"
            "def stamp2():\n"
            "    return time.time()\n"
        )
        findings = lint_source(code)
        assert len(findings) == 2
        assert all(f.suppressed for f in findings)

    def test_multiple_rules_one_comment(self):
        code = (
            "import time, random\n\n"
            "def stamp():\n"
            "    return time.time(), random.random()  "
            "# simlint: disable=DET001,DET002 (demo)\n"
        )
        findings = lint_source(code)
        assert len(findings) == 2
        assert all(f.suppressed for f in findings)

    def test_malformed_reason_still_suppresses(self):
        # An unclosed reason parenthesis: the rule list is intact, so
        # the suppression applies, just with no recorded reason.
        code = (
            "import time\n\n"
            "def stamp():\n"
            "    return time.time()  # simlint: disable=DET001 (oops\n"
        )
        (finding,) = lint_source(code)
        assert finding.suppressed
        assert finding.suppress_reason == "(no reason given)"

    def test_lowercase_rule_id_is_not_a_suppression(self):
        code = (
            "import time\n\n"
            "def stamp():\n"
            "    return time.time()  # simlint: disable=det001 (typo)\n"
        )
        (finding,) = lint_source(code)
        assert not finding.suppressed


class TestBaseline:
    def test_roundtrip_hides_known_findings(self, tmp_path):
        module = write_module(tmp_path, "mod.py", WALL_CLOCK)
        baseline_path = tmp_path / "baseline.json"
        report = lint_paths([module])
        assert len(report.active) == 1
        write_baseline(baseline_path, report.active)
        report2 = lint_paths([module], baseline=load_baseline(baseline_path))
        assert report2.active == []
        assert len(report2.baselined) == 1
        assert report2.baselined[0].baseline_reason == TODO_REASON

    def test_baseline_survives_line_moves(self, tmp_path):
        module = write_module(tmp_path, "mod.py", WALL_CLOCK)
        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, lint_paths([module]).active)
        # Shift the offending line down; identity ignores line numbers.
        module.write_text(
            "'''docstring'''\n\n\n" + module.read_text(), encoding="utf-8"
        )
        report = lint_paths([module], baseline=load_baseline(baseline_path))
        assert report.active == []
        assert len(report.baselined) == 1

    def test_new_violation_not_masked(self, tmp_path):
        module = write_module(tmp_path, "mod.py", WALL_CLOCK)
        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, lint_paths([module]).active)
        module.write_text(
            module.read_text()
            + "\ndef fresh():\n    return time.monotonic()\n",
            encoding="utf-8",
        )
        report = lint_paths([module], baseline=load_baseline(baseline_path))
        assert len(report.active) == 1
        assert "time.monotonic" in report.active[0].message

    def test_stale_entries_reported_not_fatal(self, tmp_path):
        module = write_module(tmp_path, "mod.py", WALL_CLOCK)
        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, lint_paths([module]).active)
        write_module(tmp_path, "mod.py", "def clean():\n    return 1\n")
        report = lint_paths([module], baseline=load_baseline(baseline_path))
        assert report.ok
        assert len(report.stale_baseline) == 1
        assert report.stale_baseline[0]["rule"] == "DET001"

    def test_rewrite_preserves_reasons(self, tmp_path):
        module = write_module(tmp_path, "mod.py", WALL_CLOCK)
        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, lint_paths([module]).active)
        document = json.loads(baseline_path.read_text())
        document["entries"][0]["reason"] = "reviewed: display only"
        baseline_path.write_text(json.dumps(document))
        write_baseline(
            baseline_path,
            lint_paths([module]).active,
            previous=load_baseline(baseline_path),
        )
        document = json.loads(baseline_path.read_text())
        assert document["entries"][0]["reason"] == "reviewed: display only"

    def test_malformed_baseline_rejected(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(BaselineError):
            load_baseline(bad)
        bad.write_text('{"version": 1}')
        with pytest.raises(BaselineError):
            load_baseline(bad)

    def test_absolute_lint_paths_match_relative_baseline(
        self, tmp_path, monkeypatch
    ):
        # Baselines store repo-relative paths; linting the same tree via
        # an absolute path must still match them.
        monkeypatch.chdir(tmp_path)
        module = write_module(tmp_path, "mod.py", WALL_CLOCK)
        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, lint_paths(["mod.py"]).active)
        report = lint_paths(
            [module.resolve()], baseline=load_baseline(baseline_path)
        )
        assert report.active == []
        assert len(report.baselined) == 1
        assert report.stale_baseline == []

    def test_match_requires_same_rule_and_snippet(self, tmp_path):
        baseline = Baseline(
            [
                {
                    "rule": "DET002",
                    "path": "src/x.py",
                    "symbol": "stamp",
                    "snippet": "return time.time()",
                    "reason": "r",
                }
            ]
        )
        module = write_module(tmp_path, "mod.py", WALL_CLOCK)
        report = lint_paths([module], baseline=baseline)
        assert len(report.active) == 1  # rule/path differ -> no match


class TestSelection:
    def test_select_narrows(self, tmp_path):
        module = write_module(
            tmp_path,
            "mod.py",
            """
            import time, random

            def stamp():
                return time.time(), random.random()
            """,
        )
        report = lint_paths([module], select=["DET002"])
        assert [f.rule for f in report.active] == ["DET002"]

    def test_ignore_drops(self, tmp_path):
        module = write_module(
            tmp_path,
            "mod.py",
            """
            import time, random

            def stamp():
                return time.time(), random.random()
            """,
        )
        report = lint_paths([module], ignore=["DET001"])
        assert [f.rule for f in report.active] == ["DET002"]

    def test_unknown_rule_id_is_usage_error(self, tmp_path):
        module = write_module(tmp_path, "mod.py", "x = 1\n")
        with pytest.raises(LintUsageError):
            lint_paths([module], select=["NOPE999"])

    def test_missing_path_is_usage_error(self, tmp_path):
        with pytest.raises(LintUsageError):
            lint_paths([tmp_path / "does-not-exist"])

    def test_syntax_error_is_usage_error(self, tmp_path):
        module = write_module(tmp_path, "mod.py", "def broken(:\n")
        with pytest.raises(LintUsageError):
            lint_paths([module])

    def test_project_rule_without_project_mode_is_usage_error(self, tmp_path):
        module = write_module(tmp_path, "mod.py", "x = 1\n")
        with pytest.raises(LintUsageError, match="--project"):
            lint_paths([module], select=["DET010"])

    def test_runtime_rule_is_never_engine_selectable(self, tmp_path):
        module = write_module(tmp_path, "mod.py", "x = 1\n")
        with pytest.raises(LintUsageError, match="simsan"):
            lint_paths([module], select=["SAN001"], project=True)

    def test_project_rules_only_run_in_project_mode(self, tmp_path):
        # The same unknown-id validation applies to --ignore.
        module = write_module(tmp_path, "mod.py", "x = 1\n")
        with pytest.raises(LintUsageError):
            lint_paths([module], ignore=["NOPE999"])


class TestFileDiscovery:
    def test_explicit_non_python_file_is_usage_error(self, tmp_path):
        # Silently skipping a named file would exit 0 as a false clean
        # bill of health.
        notes = tmp_path / "notes.txt"
        notes.write_text("not python\n")
        with pytest.raises(LintUsageError, match="not a Python file"):
            iter_python_files([notes])

    def test_directory_walk_filters_to_python(self, tmp_path):
        write_module(tmp_path, "mod.py", "x = 1\n")
        (tmp_path / "notes.txt").write_text("ignored\n")
        files = iter_python_files([tmp_path])
        assert [p.name for p in files] == ["mod.py"]

    def test_duplicates_collapse(self, tmp_path):
        module = write_module(tmp_path, "mod.py", "x = 1\n")
        assert iter_python_files([module, module, tmp_path]) == [module]


class TestReportersAndDeterminism:
    def test_text_report_shape(self, tmp_path):
        module = write_module(tmp_path, "mod.py", WALL_CLOCK)
        report = lint_paths([module])
        text = format_text(report)
        assert "DET001" in text
        assert f"{module.as_posix()}:5:" in text
        assert "hint:" in text
        assert "1 finding(s)" in text

    def test_json_report_shape(self, tmp_path):
        module = write_module(tmp_path, "mod.py", WALL_CLOCK)
        report = lint_paths([module])
        document = json.loads(format_json(report))
        assert document["version"] == 1
        assert document["summary"]["active"] == 1
        assert document["summary"]["ok"] is False
        (finding,) = document["findings"]
        assert finding["rule"] == "DET001"
        assert finding["symbol"] == "stamp"

    def test_two_runs_byte_identical(self, tmp_path):
        write_module(tmp_path, "b.py", WALL_CLOCK)
        write_module(
            tmp_path,
            "a.py",
            """
            import random

            def draw():
                return random.random()
            """,
        )
        first = format_json(lint_paths([tmp_path]))
        second = format_json(lint_paths([tmp_path]))
        assert first == second
        document = json.loads(first)
        paths = [f["path"] for f in document["findings"]]
        assert paths == sorted(paths)

    def test_directory_walk_counts_files(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        write_module(tmp_path, "pkg/__init__.py", "")
        write_module(tmp_path, "pkg/mod.py", "x = 1\n")
        report = lint_paths([tmp_path])
        assert report.files_checked == 2
        assert report.ok

    def test_sarif_report_shape(self, tmp_path):
        module = write_module(tmp_path, "mod.py", WALL_CLOCK)
        document = json.loads(format_sarif(lint_paths([module])))
        assert document["version"] == "2.1.0"
        (run,) = document["runs"]
        assert run["tool"]["driver"]["name"] == "simlint"
        rule_ids = [rule["id"] for rule in run["tool"]["driver"]["rules"]]
        assert "DET001" in rule_ids and "LOCK010" in rule_ids
        (result,) = run["results"]
        assert result["ruleId"] == "DET001"
        assert result["level"] == "error"
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == module.as_posix()
        assert location["region"]["startLine"] == 5

    def test_sarif_counts_only_active_findings(self, tmp_path):
        module = write_module(
            tmp_path,
            "mod.py",
            """
            import time

            def stamp():
                return time.time()  # simlint: disable=DET001 (label)
            """,
        )
        document = json.loads(format_sarif(lint_paths([module])))
        assert document["runs"][0]["results"] == []

    def test_github_annotations_shape(self, tmp_path):
        module = write_module(tmp_path, "mod.py", WALL_CLOCK)
        text = format_github(lint_paths([module]))
        line = text.splitlines()[0]
        assert line.startswith("::error ")
        assert f"file={module.as_posix()},line=5," in line
        assert "title=simlint DET001::" in line

    def test_github_annotations_escape_newlines_and_percent(self):
        from repro.devtools.simlint.findings import Finding, LintReport

        report = LintReport()
        report.files_checked = 1
        report.active.append(
            Finding(
                rule="DET001",
                path="x.py",
                line=1,
                col=0,
                message="50% of\nruns differ",
                severity="error",
                symbol="f",
                snippet="s",
                hint="h",
            )
        )
        (line, _summary) = format_github(report).splitlines()
        assert "50%25 of%0Aruns differ" in line
