"""Whole-program rule tests: DET010/DET011 taint, LOCK010 lock-flow,
LOCK011 lock-order cycles, and the regression fixture for the cross-
function lock-handoff bug that motivated the analysis.

Each fixture is a miniature project written to ``tmp_path``; the
positive variant must produce exactly the expected finding and the
negative variant (same shape, protocol made safe) must be clean —
both directions guard against the analysis rotting into "flags
everything" or "flags nothing".
"""

import textwrap

from repro.devtools.simlint import lint_paths

# ---------------------------------------------------------------------------
# Fixture sources
# ---------------------------------------------------------------------------

#: A helper launders time.time() through a return value; its caller
#: feeds the result onward with no flagged line in its own file.
TAINT_CHAIN = """
    import time

    def stamp():
        return time.time()

    def delay_for():
        return stamp() * 2.0

    def schedule(env):
        yield env.timeout(delay_for())
"""

#: Same shape, but the source is justified inline, so the taint dies
#: at the source instead of propagating.
TAINT_CHAIN_SUPPRESSED = """
    import time

    def stamp():
        # simlint: disable=DET001 (stopwatch for the progress bar only)
        return time.time()

    def delay_for():
        return stamp() * 2.0

    def schedule(env):
        yield env.timeout(delay_for())
"""

#: Same shape, but the helper is declared deterministic by pragma.
TAINT_CHAIN_ASSUMED = """
    import time

    def stamp():  # simlint: assume=deterministic (reads a frozen config)
        return time.time()

    def delay_for():
        return stamp() * 2.0

    def schedule(env):
        yield env.timeout(delay_for())
"""

#: Clean control: values derive from parameters only.
TAINT_CLEAN = """
    def delay_for(config):
        return config.delay_ms * 2.0

    def schedule(env, config):
        yield env.timeout(delay_for(config))
"""

#: The PR 3 bug class: ``read`` acquires a stripe lock and hands the
#: release to a spawned closer, but the closer releases on only some
#: paths. The handoff acquire carries the LOCK001 justification the
#: real code uses — after that, no per-module rule has anything left
#: to say, which is exactly the blind spot.
HANDOFF_LEAK = """
    class Cache:
        def __init__(self, env):
            self.env = env

        def read(self, stripe, piggyback):
            # simlint: disable=LOCK001 (ownership handed to the spawned closer)
            yield self.locks.acquire(stripe)
            self.env.process(self._finish(stripe, piggyback))

        def _finish(self, stripe, piggyback):
            if not piggyback:
                return
            yield self.env.timeout(1.0)
            self.locks.release(stripe)
"""

#: The correct protocol: the spawned closer releases on every path.
HANDOFF_SAFE = """
    class Cache:
        def __init__(self, env):
            self.env = env

        def read(self, stripe, piggyback):
            # simlint: disable=LOCK001 (ownership handed to the spawned closer)
            yield self.locks.acquire(stripe)
            self.env.process(self._finish(stripe, piggyback))

        def _finish(self, stripe, piggyback):
            try:
                if piggyback:
                    yield self.env.timeout(1.0)
            finally:
                self.locks.release(stripe)
"""

#: Two opener helpers taken in opposite orders by two callers: the
#: acquired-while-holding edges form a cycle between the two acquire
#: sites even though each function looks locally consistent.
ORDER_CYCLE = """
    class Controller:
        def take_data(self, stripe):
            yield self.locks.acquire(stripe)

        def take_parity(self, stripe):
            yield self.locks.acquire(stripe)

        def forward(self):
            yield from self.take_data(1)
            yield from self.take_parity(2)
            self.locks.release(2)
            self.locks.release(1)

        def backward(self):
            yield from self.take_parity(2)
            yield from self.take_data(1)
            self.locks.release(1)
            self.locks.release(2)
"""

#: Same helpers, but every caller uses the same global order.
ORDER_CONSISTENT = """
    class Controller:
        def take_data(self, stripe):
            yield self.locks.acquire(stripe)

        def take_parity(self, stripe):
            yield self.locks.acquire(stripe)

        def forward(self):
            yield from self.take_data(1)
            yield from self.take_parity(2)
            self.locks.release(2)
            self.locks.release(1)

        def also_forward(self):
            yield from self.take_data(3)
            yield from self.take_parity(4)
            self.locks.release(4)
            self.locks.release(3)
"""


def write_project(tmp_path, **modules):
    paths = []
    for name, code in sorted(modules.items()):
        path = tmp_path / f"{name}.py"
        path.write_text(textwrap.dedent(code), encoding="utf-8")
        paths.append(path)
    return paths


def project_findings(paths, *rules):
    report = lint_paths(paths, select=list(rules), project=True)
    return report.active


# ---------------------------------------------------------------------------
# DET010: transitive nondeterminism through return values
# ---------------------------------------------------------------------------
class TestTransitiveNondeterminism:
    def test_laundered_wall_clock_flagged_at_call_sites(self, tmp_path):
        paths = write_project(tmp_path, chain=TAINT_CHAIN)
        findings = project_findings(paths, "DET010")
        assert findings, "laundered time.time() must surface as DET010"
        assert all(f.rule == "DET010" for f in findings)
        # The chain is spelled out hop by hop back to the source.
        messages = " | ".join(f.message for f in findings)
        assert "stamp()" in messages
        assert "wall clock" in messages

    def test_cross_module_chain_flagged(self, tmp_path):
        paths = write_project(
            tmp_path,
            clock="""
                import time

                def stamp():
                    return time.time()
            """,
            sched="""
                from clock import stamp

                def delay_for():
                    return stamp() * 2.0
            """,
        )
        findings = project_findings(paths, "DET010")
        assert any(
            f.path.endswith("sched.py") and "stamp()" in f.message
            for f in findings
        ), "the import-crossing call must be flagged in the caller's file"

    def test_per_module_rules_cannot_see_the_chain(self, tmp_path):
        # The callers' modules contain no flaggable line of their own:
        # everything DET001 can say is at the source line itself.
        paths = write_project(tmp_path, chain=TAINT_CHAIN)
        report = lint_paths(paths)  # module scope only
        assert [f.rule for f in report.active] == ["DET001"]

    def test_inline_source_suppression_kills_the_taint(self, tmp_path):
        paths = write_project(tmp_path, chain=TAINT_CHAIN_SUPPRESSED)
        assert project_findings(paths, "DET010", "DET011") == []

    def test_assume_deterministic_pragma_clears_summary(self, tmp_path):
        paths = write_project(tmp_path, chain=TAINT_CHAIN_ASSUMED)
        assert project_findings(paths, "DET010", "DET011") == []

    def test_clean_project_is_clean(self, tmp_path):
        paths = write_project(tmp_path, clean=TAINT_CLEAN)
        assert project_findings(paths, "DET010") == []

    def test_assume_nondeterministic_forces_taint(self, tmp_path):
        paths = write_project(
            tmp_path,
            ext="""
                def read_sensor():  # simlint: assume=nondeterministic (reads hardware)
                    return 42

                def use():
                    return read_sensor() + 1
            """,
        )
        findings = project_findings(paths, "DET010")
        assert any("read_sensor()" in f.message for f in findings)


# ---------------------------------------------------------------------------
# DET011: nondeterministic values reaching the event kernel
# ---------------------------------------------------------------------------
class TestTaintedKernelFeed:
    def test_tainted_timeout_flagged(self, tmp_path):
        paths = write_project(tmp_path, chain=TAINT_CHAIN)
        findings = project_findings(paths, "DET011")
        assert findings, "wall clock flowing into env.timeout must be DET011"
        (finding,) = [f for f in findings if "env.timeout" in f.message]
        assert finding.symbol.endswith("schedule")
        assert "wall clock" in finding.message

    def test_parameter_derived_timeout_is_clean(self, tmp_path):
        paths = write_project(tmp_path, clean=TAINT_CLEAN)
        assert project_findings(paths, "DET011") == []

    def test_sorted_sanitizes_order_taint(self, tmp_path):
        paths = write_project(
            tmp_path,
            ordered="""
                def names():
                    return list({"a", "b", "c"})

                def schedule(env, table):
                    for name in sorted(names()):
                        yield env.timeout(table[name])
            """,
        )
        assert project_findings(paths, "DET011") == []

    def test_unsorted_order_taint_reaches_kernel(self, tmp_path):
        paths = write_project(
            tmp_path,
            ordered="""
                def names():
                    return list({"a", "b", "c"})

                def schedule(env, table):
                    for name in names():
                        yield env.timeout(table[name])
            """,
        )
        findings = project_findings(paths, "DET011")
        assert any("order" in f.message for f in findings)


# ---------------------------------------------------------------------------
# LOCK010: cross-function lock handoff (the seeded PR 3 regression)
# ---------------------------------------------------------------------------
class TestInterproceduralLockLeak:
    def test_sometimes_closer_handoff_flagged(self, tmp_path):
        paths = write_project(tmp_path, handoff=HANDOFF_LEAK)
        findings = project_findings(paths, "LOCK010")
        assert findings, "conditional release in the spawned closer must leak"
        (finding,) = findings
        assert finding.rule == "LOCK010"
        assert "_finish" in finding.message
        assert "only some paths" in finding.message
        # Anchored at the handoff in read(), where the fix belongs.
        assert finding.symbol.endswith("read")

    def test_always_closer_handoff_is_clean(self, tmp_path):
        paths = write_project(tmp_path, handoff=HANDOFF_SAFE)
        assert project_findings(paths, "LOCK010") == []

    def test_per_module_lint_provably_misses_the_leak(self, tmp_path):
        # The acceptance gate for the whole analysis: the per-module
        # rules (LOCK001 included) report *nothing* on the buggy
        # fixture, while --project pins the leak. If this ever starts
        # failing on the first assert, the per-module rules grew the
        # power and LOCK010 may be redundant; if on the second, the
        # regression is live again.
        paths = write_project(tmp_path, handoff=HANDOFF_LEAK)
        module_report = lint_paths(paths)
        assert module_report.active == []
        project_report = lint_paths(paths, project=True)
        assert [f.rule for f in project_report.active] == ["LOCK010"]

    def test_unreleased_local_lock_is_a_leak(self, tmp_path):
        # A parameter-keyed hold at every exit is a deliberate opener
        # (the obligation moves to the caller); a *locally*-keyed hold
        # with no caller to pick it up is simply leaked.
        paths = write_project(
            tmp_path,
            plain="""
                class Controller:
                    def sweep(self):
                        stripe = self.next_stripe()
                        yield self.locks.acquire(stripe)
                        yield self.env.timeout(1.0)
            """,
        )
        findings = project_findings(paths, "LOCK010")
        assert any("still held" in f.message for f in findings)


# ---------------------------------------------------------------------------
# LOCK011: lock-order cycles
# ---------------------------------------------------------------------------
class TestLockOrderCycle:
    def test_opposite_orders_form_a_cycle(self, tmp_path):
        paths = write_project(tmp_path, cycle=ORDER_CYCLE)
        findings = project_findings(paths, "LOCK011")
        assert findings, "opposite acquisition orders must report a cycle"
        assert all(f.rule == "LOCK011" for f in findings)
        assert "cycle" in findings[0].message

    def test_consistent_order_is_clean(self, tmp_path):
        paths = write_project(tmp_path, cycle=ORDER_CONSISTENT)
        assert project_findings(paths, "LOCK011") == []

    def test_cycle_findings_are_suppressible(self, tmp_path):
        code = ORDER_CYCLE.replace(
            "def take_data(self, stripe):\n"
            "            yield self.locks.acquire(stripe)",
            "def take_data(self, stripe):\n"
            "            # simlint: disable=LOCK011 (ordered by caller convention)\n"
            "            yield self.locks.acquire(stripe)",
        )
        paths = write_project(tmp_path, cycle=code)
        report = lint_paths(paths, select=["LOCK011"], project=True)
        # Whether the anchor lands on this site depends on cycle
        # ordering; what must hold is that a suppression at the anchor
        # line moves the finding out of the active list.
        if report.active:
            anchored = report.active[0]
            assert "acquire" in anchored.snippet


# ---------------------------------------------------------------------------
# Determinism of the whole-program pass itself
# ---------------------------------------------------------------------------
class TestProjectDeterminism:
    def test_two_project_runs_identical(self, tmp_path):
        write_project(
            tmp_path,
            chain=TAINT_CHAIN,
            handoff=HANDOFF_LEAK,
            cycle=ORDER_CYCLE,
        )
        first = lint_paths([tmp_path], project=True)
        second = lint_paths([tmp_path], project=True)
        keys = lambda report: [  # noqa: E731 - local shorthand
            (f.rule, f.path, f.line, f.message) for f in report.active
        ]
        assert keys(first) == keys(second)
        assert keys(first)  # the combined tree does have findings
