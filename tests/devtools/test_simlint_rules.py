"""Per-rule fixture tests: every rule has positive and negative snippets.

The acceptance contract for the linter: each rule ID fires on its
positive fixtures and stays quiet on its negatives. The fixture table
is also what guards rule IDs as stable API — renaming an ID breaks
this file loudly.
"""

import textwrap

import pytest

from repro.devtools.simlint import all_rules, lint_source

#: Module-scope rules only: the fixture table below runs one file at a
#: time. Project-scope rules are covered by test_simlint_project.py,
#: runtime (SAN) rules by test_simsan.py.
ALL_RULE_IDS = sorted(
    rule.id for rule in all_rules() if rule.scope == "module"
)


def findings_for(code, path="src/repro/somemodule.py"):
    """Active (non-suppressed) findings for a fixture snippet."""
    result = lint_source(textwrap.dedent(code), path)
    return [f for f in result if not f.suppressed]


def rule_ids(code, path="src/repro/somemodule.py"):
    return sorted({f.rule for f in findings_for(code, path)})


# Each entry: (rule id, [positive snippets], [negative snippets]).
FIXTURES = [
    (
        "DET001",
        [
            """
            import time

            def stamp():
                return time.time()
            """,
            """
            from datetime import datetime

            def stamp():
                return datetime.now()
            """,
            """
            import time as clock

            def stamp():
                return clock.perf_counter()
            """,
        ],
        [
            """
            def stamp(env):
                return env.now
            """,
            """
            import time

            def pause():
                time.sleep(0.1)
            """,
        ],
    ),
    (
        "DET002",
        [
            """
            import random

            def draw():
                return random.random()
            """,
            """
            import random

            def shuffle(xs):
                random.shuffle(xs)
            """,
            """
            import random

            def make_rng():
                return random.Random()
            """,
            """
            import numpy as np

            def noise(n):
                return np.random.rand(n)
            """,
        ],
        [
            """
            import random

            def make_rng(seed):
                return random.Random(seed)
            """,
            """
            def draw(rng):
                return rng.random()
            """,
            """
            import numpy as np

            def make_rng(seed):
                return np.random.default_rng(seed)
            """,
        ],
    ),
    (
        "DET003",
        [
            """
            def order(xs):
                return sorted(xs, key=id)
            """,
            """
            def order(xs):
                xs.sort(key=lambda x: id(x))
            """,
            """
            def first(a, b):
                return a if id(a) < id(b) else b
            """,
        ],
        [
            """
            def order(xs):
                return sorted(xs, key=lambda x: x.disk)
            """,
            """
            def describe(x):
                return f"<obj at {id(x):#x}>"
            """,
        ],
    ),
    (
        "DET004",
        [
            """
            def schedule(events):
                for event in set(events):
                    event.fire()
            """,
            """
            def keys(table):
                for key in table.keys():
                    yield key
            """,
            """
            def freeze(xs):
                return tuple(set(xs))
            """,
            """
            def union(a, b):
                return [x for x in set(a) | set(b)]
            """,
        ],
        [
            """
            def schedule(events):
                for event in sorted(set(events)):
                    event.fire()
            """,
            """
            def freeze(xs):
                return tuple(sorted(set(xs)))
            """,
            """
            def member(x, t):
                return x in set(t)
            """,
            """
            def pairs(table):
                for key, value in table.items():
                    yield key, value
            """,
        ],
    ),
    (
        "LOCK001",
        [
            """
            def critical(self, stripe):
                yield self.locks.acquire(stripe)
                yield self.work(stripe)
                self.locks.release(stripe)
            """,
            """
            def critical(controller, stripe):
                yield controller.locks.acquire(stripe)
                try:
                    yield controller.work(stripe)
                finally:
                    controller.other_locks.release(stripe)
            """,
        ],
        [
            """
            def critical(self, stripe):
                yield self.locks.acquire(stripe)
                try:
                    yield self.work(stripe)
                finally:
                    self.locks.release(stripe)
            """,
            """
            def critical(self, stripe):
                try:
                    yield self.locks.acquire(stripe)
                    yield self.work(stripe)
                finally:
                    self.locks.release(stripe)
            """,
            """
            def handoff_guard(self, stripe):
                done = False
                yield self.locks.acquire(stripe)
                try:
                    yield self.work(stripe)
                finally:
                    if not done:
                        self.locks.release(stripe)
            """,
            """
            def not_a_generator(self, stripe):
                self.locks.acquire(stripe)
                self.locks.release(stripe)
            """,
        ],
    ),
    (
        "TIME001",
        [
            """
            def due(env, deadline_ms):
                return env.now == deadline_ms
            """,
            """
            def same(start_ms, end_ms):
                return start_ms != end_ms
            """,
        ],
        [
            """
            def due(env, deadline_ms):
                return env.now >= deadline_ms
            """,
            """
            def check(count):
                return count == 3
            """,
        ],
    ),
    (
        "MUT001",
        [
            """
            def tweak(config: ScenarioConfig):
                config.seed = 1
            """,
            """
            def tweak(profile: "FaultProfile"):
                profile.disk_mttf_hours += 1.0
            """,
            """
            def tweak(profile):
                object.__setattr__(profile, "disk_mttf_hours", 0.0)
            """,
        ],
        [
            """
            import dataclasses

            def tweak(config: ScenarioConfig):
                return dataclasses.replace(config, seed=1)
            """,
            """
            class Design:
                def __post_init__(self):
                    object.__setattr__(self, "tuples", ())
            """,
            """
            def tweak(options):
                options.jobs = 2
            """,
        ],
    ),
    (
        "ERR001",
        [
            """
            def run(task):
                try:
                    task()
                except Exception:
                    pass
            """,
            """
            def run(task):
                try:
                    task()
                except:
                    return None
            """,
            """
            def run(task):
                try:
                    task()
                except BaseException as exc:
                    log(exc)
            """,
        ],
        [
            """
            def run(task):
                try:
                    task()
                except Exception:
                    raise
            """,
            """
            def run(task):
                try:
                    task()
                except DataLossError:
                    account()
                except Exception as exc:
                    log(exc)
            """,
            """
            def run(task):
                try:
                    task()
                except ValueError:
                    pass
            """,
        ],
    ),
]


def test_fixture_table_covers_every_rule():
    assert sorted(rule for rule, _pos, _neg in FIXTURES) == ALL_RULE_IDS


@pytest.mark.parametrize(
    "rule,snippet",
    [(rule, snippet) for rule, positives, _neg in FIXTURES for snippet in positives],
)
def test_positive_fixture_fires(rule, snippet):
    assert rule in rule_ids(snippet), f"{rule} should fire on:\n{snippet}"


@pytest.mark.parametrize(
    "rule,snippet",
    [(rule, snippet) for rule, _pos, negatives in FIXTURES for snippet in negatives],
)
def test_negative_fixture_quiet(rule, snippet):
    assert rule not in rule_ids(snippet), f"{rule} must not fire on:\n{snippet}"


def test_det002_allowed_in_rng_module():
    code = """
    import random

    def make():
        return random.Random()
    """
    assert rule_ids(code, path="src/repro/sim/rng.py") == []
    assert rule_ids(code, path="src/repro/faults/state.py") == []
    assert "DET002" in rule_ids(code, path="src/repro/array/controller.py")


def test_findings_carry_symbol_snippet_and_hint():
    code = """
    import time

    class Clock:
        def stamp(self):
            return time.time()
    """
    (finding,) = findings_for(code)
    assert finding.rule == "DET001"
    assert finding.symbol == "Clock.stamp"
    assert finding.snippet == "return time.time()"
    assert finding.hint
    assert finding.line == 6


def test_rule_metadata_complete():
    for rule in all_rules():
        assert rule.id and rule.title and rule.rationale and rule.hint
        assert rule.severity in ("note", "warning", "error")
