"""Unit tests for the simsan lock monitor (SAN001–SAN006).

The monitor attributes lock operations to the *frame* that called the
lock table, so each scripted "process" below is one plain function
whose body performs the whole acquire/release sequence: every call in
one body shares one frame, two different functions are two different
owners — exactly the property real generator processes have.
"""

import inspect
import os

import pytest

from repro.array.locks import StripeLockTable
from repro.devtools.simsan import LockMonitor, StaticLockModel
from repro.sim import Environment


def make_table(monitor):
    return StripeLockTable(Environment(), monitor=monitor)


def span_of(function):
    """(path, first, last) of a test helper, in monitor coordinates."""
    path = os.path.relpath(inspect.getfile(function), os.getcwd())
    path = path.replace("\\", "/")
    lines, first = inspect.getsourcelines(function)
    return (path, first, first + len(lines) - 1)


# Scripted processes -------------------------------------------------------

def hold_and_release(table, stripe):
    table.acquire(stripe)
    table.release(stripe)


def double_acquire(table, stripe):
    table.acquire(stripe)
    table.acquire(stripe)


def take_forward(table):
    table.acquire(1)
    table.acquire(2)
    table.release(2)
    table.release(1)


def take_backward(table):
    table.acquire(2)
    table.acquire(1)
    table.release(1)
    table.release(2)


def acquire_only(table, stripe):
    table.acquire(stripe)


def release_only(table, stripe):
    table.release(stripe)


def rules_of(monitor):
    return [violation.rule for violation in monitor.violations]


class TestProtocolChecks:
    def test_clean_protocol_has_no_violations(self):
        monitor = LockMonitor()
        table = make_table(monitor)
        hold_and_release(table, 3)
        monitor.finish()
        assert monitor.violations == []
        assert monitor.acquires == 1
        assert monitor.releases == 1

    def test_san001_reentrant_acquire(self):
        monitor = LockMonitor()
        table = make_table(monitor)
        double_acquire(table, 5)
        assert rules_of(monitor) == ["SAN001"]
        assert "not reentrant" in monitor.violations[0].message

    def test_distinct_stripes_are_not_reentrant(self):
        monitor = LockMonitor()
        table = make_table(monitor)
        take_forward(table)
        assert monitor.violations == []

    def test_san002_opposite_orders(self):
        monitor = LockMonitor()
        table = make_table(monitor)
        take_forward(table)
        take_backward(table)
        assert rules_of(monitor) == ["SAN002"]
        assert "both orders" in monitor.violations[0].message

    def test_consistent_orders_are_clean(self):
        monitor = LockMonitor()
        table = make_table(monitor)
        take_forward(table)
        take_forward(table)
        assert monitor.violations == []

    def test_san003_release_without_holder(self):
        monitor = LockMonitor()
        table = make_table(monitor)
        with pytest.raises(KeyError):
            # The table itself also rejects the stray release; the
            # monitor must have recorded it first.
            # simlint: disable=SAN003 (this release is the test subject)
            release_only(table, 9)
        assert rules_of(monitor) == ["SAN003"]

    def test_san004_foreign_release_without_declared_closer(self):
        monitor = LockMonitor()
        table = make_table(monitor)
        acquire_only(table, 4)
        release_only(table, 4)
        assert rules_of(monitor) == ["SAN004"]
        assert "different process" in monitor.violations[0].message

    def test_san004_suppressed_by_static_closer_span(self):
        static = StaticLockModel(closer_spans=[span_of(release_only)])
        monitor = LockMonitor(static=static)
        table = make_table(monitor)
        acquire_only(table, 4)
        release_only(table, 4)
        monitor.finish()
        assert monitor.violations == []

    def test_san005_lock_held_at_end(self):
        monitor = LockMonitor()
        table = make_table(monitor)
        acquire_only(table, 8)
        monitor.finish()
        assert rules_of(monitor) == ["SAN005"]
        assert "still held" in monitor.violations[0].message

    def test_san005_gated_by_expect_drained(self):
        monitor = LockMonitor(expect_drained=False)
        table = make_table(monitor)
        acquire_only(table, 8)
        monitor.finish()
        assert monitor.violations == []

    def test_san006_runtime_edge_missing_from_static_graph(self):
        monitor = LockMonitor(static=StaticLockModel(), expect_drained=False)
        table = make_table(monitor)
        take_forward(table)
        monitor.finish()
        assert rules_of(monitor) == ["SAN006"]
        assert "blind spot" in monitor.violations[0].message

    def test_san006_clean_when_static_graph_contains_edge(self):
        probe = LockMonitor()
        take_forward(make_table(probe))
        static = StaticLockModel(edges=set(probe.site_edges))
        monitor = LockMonitor(static=static, expect_drained=False)
        take_forward(make_table(monitor))
        monitor.finish()
        assert monitor.violations == []


class TestFifoHandoffAttribution:
    def test_waiter_becomes_holder_at_release(self):
        # Contended acquire: the waiter is granted at release time and
        # must be recorded as the new holder (owned by *its* frame), so
        # its own release is not a SAN004.
        monitor = LockMonitor()
        table = make_table(monitor)

        def first(event_box):
            event_box.append(table.acquire(7))

        def second(table):
            # A generator keeps one frame alive across the handoff:
            # the same frame acquires (queued), waits, and releases —
            # exactly how real simulation processes own locks.
            table.acquire(7)
            yield
            table.release(7)

        held = []
        first(held)
        waiter = second(table)
        next(waiter)  # runs the queued acquire inside the generator frame
        table.release(7)  # first hands off to the waiter  # simlint: disable=SAN004 (handoff is the test subject)
        assert rules_of(monitor) == ["SAN004"]  # this frame never acquired 7
        monitor.violations.clear()
        with pytest.raises(StopIteration):
            next(waiter)  # the waiter releases its own hold: clean
        assert monitor.violations == []


class TestFindings:
    def test_violations_become_simlint_findings(self):
        monitor = LockMonitor()
        table = make_table(monitor)
        acquire_only(table, 2)
        release_only(table, 2)
        findings = monitor.findings()
        assert len(findings) == 1
        (finding,) = findings
        assert finding.rule == "SAN004"
        assert finding.path.endswith("test_simsan.py")
        assert finding.symbol == "release_only"
        assert finding.snippet == "table.release(stripe)"
        assert finding.severity == "error"
        assert finding.hint  # pulled from the registered SAN rule

    def test_inline_suppression_honoured(self):
        monitor = LockMonitor()
        table = make_table(monitor)
        with pytest.raises(KeyError):
            # simlint: disable=SAN003 (scripted double release)
            table.release(11)
        (finding,) = monitor.findings()
        assert finding.suppressed
        assert finding.suppress_reason == "scripted double release"


class TestStaticModelFromProject:
    def test_closer_spans_and_edges_extracted(self, tmp_path):
        from repro.devtools.simlint.project.modules import ProjectContext

        module = tmp_path / "handoff.py"
        module.write_text(
            "class Cache:\n"
            "    def read(self, stripe):\n"
            "        yield self.locks.acquire(stripe)\n"
            "        yield self.locks.acquire(stripe + 1)\n"
            "        self.env.process(self._finish(stripe))\n"
            "        self.locks.release(stripe + 1)\n"
            "\n"
            "    def _finish(self, stripe):\n"
            "        yield self.env.timeout(1.0)\n"
            "        self.locks.release(stripe)\n",
            encoding="utf-8",
        )
        model = StaticLockModel.from_project(ProjectContext([module]))
        # _finish releases a parameter-keyed lock: it is a closer.
        closer = [
            (path, first, last)
            for path, first, last in model.closer_spans
            if path.endswith("handoff.py") and first <= 10 <= last
        ]
        assert closer, f"_finish span missing from {model.closer_spans}"
        from repro.devtools.simsan.monitor import Site

        path = closer[0][0]
        assert model.in_closer_span(Site(path, 10, "_finish"))
        # The class line belongs to no function span at all.
        assert not model.in_closer_span(Site(path, 1, "<module>"))
        # The nested acquire produced an acquired-while-holding edge.
        assert any(
            src[1] == 3 and dst[1] == 4 for src, dst in model.edges
        )
