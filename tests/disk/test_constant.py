"""Unit tests for the work-preserving constant-rate disk."""

import pytest

from repro.disk import ConstantRateDisk, IBM_0661
from repro.sim import Environment


class TestConstantRateDisk:
    def test_every_access_costs_the_same(self):
        env = Environment()
        disk = ConstantRateDisk(env, IBM_0661, rate_per_s=50.0)

        def body(env):
            yield disk.access(0, 8, is_write=False)        # sequential
            yield disk.access(500_000, 8, is_write=True)   # far away

        env.process(body(env))
        env.run()
        assert env.now == pytest.approx(40.0)  # 2 x 20 ms

    def test_default_rate_matches_muntz_lui(self):
        env = Environment()
        disk = ConstantRateDisk(env, IBM_0661)
        assert disk.service_ms == pytest.approx(1000.0 / 46.0)

    def test_no_seek_or_rotation_charged(self):
        env = Environment()
        disk = ConstantRateDisk(env, IBM_0661)

        def body(env):
            yield disk.access(300_000, 8, is_write=False)

        env.process(body(env))
        env.run()
        assert disk.stats.total_seek_ms == 0.0
        assert disk.stats.total_rotation_ms == 0.0

    def test_head_position_still_tracked(self):
        env = Environment()
        disk = ConstantRateDisk(env, IBM_0661)

        def body(env):
            yield disk.access(100 * IBM_0661.sectors_per_cylinder, 8, is_write=False)

        env.process(body(env))
        env.run()
        assert disk.head_cylinder == 100

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            ConstantRateDisk(Environment(), IBM_0661, rate_per_s=0)

    def test_queueing_still_applies(self):
        env = Environment()
        disk = ConstantRateDisk(env, IBM_0661, rate_per_s=100.0)
        disk.access(0, 8, is_write=False)
        second = disk.access(8, 8, is_write=False)
        env.run()
        assert second.value.complete_ms == pytest.approx(20.0)
