"""Property-based tests for the disk model and schedulers."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.disk import Disk, IBM_0661, scaled_spec
from repro.disk.geometry import DiskGeometry
from repro.disk.scheduling import make_scheduler
from repro.disk.seek import SeekModel
from repro.sim import Environment


class TestSeekProperties:
    @given(st.integers(min_value=0, max_value=948))
    @settings(max_examples=60, deadline=None)
    def test_seek_time_within_spec_bounds(self, distance):
        model = SeekModel(IBM_0661)
        time = model.seek_time(distance)
        if distance == 0:
            assert time == 0.0
        else:
            assert IBM_0661.seek_min_ms - 1e-9 <= time <= IBM_0661.seek_max_ms + 1e-9

    @given(st.integers(min_value=1, max_value=947))
    @settings(max_examples=60, deadline=None)
    def test_seek_monotone(self, distance):
        model = SeekModel(IBM_0661)
        assert model.seek_time(distance + 1) >= model.seek_time(distance) - 1e-9


class TestGeometryProperties:
    @given(
        st.integers(min_value=0, max_value=IBM_0661.total_sectors - 1),
        st.integers(min_value=1, max_value=500),
    )
    @settings(max_examples=60, deadline=None)
    def test_split_preserves_sector_count(self, start, count):
        geometry = DiskGeometry(IBM_0661)
        count = min(count, IBM_0661.total_sectors - start)
        runs = geometry.split_by_track(start, count)
        assert sum(r.count for r in runs) == count
        # Runs never exceed a track and are ordered.
        for run in runs:
            assert 1 <= run.count <= IBM_0661.sectors_per_track

    @given(st.integers(min_value=0, max_value=IBM_0661.total_sectors - 1))
    @settings(max_examples=60, deadline=None)
    def test_locate_inverts(self, sector):
        geometry = DiskGeometry(IBM_0661)
        cylinder, track, within = geometry.locate(sector)
        reconstructed = (
            cylinder * IBM_0661.sectors_per_cylinder
            + track * IBM_0661.sectors_per_track
            + within
        )
        assert reconstructed == sector


class TestServiceProperties:
    @given(
        st.lists(
            st.integers(min_value=0, max_value=scaled_spec(5).total_sectors // 8 - 1),
            min_size=1,
            max_size=20,
        ),
        st.sampled_from(["fifo", "sstf", "look", "cvscan"]),
    )
    @settings(max_examples=30, deadline=None)
    def test_every_request_completes_exactly_once(self, units, policy):
        env = Environment()
        disk = Disk(env, scaled_spec(5), policy=policy)
        events = [disk.access(u * 8, 8, is_write=False) for u in units]
        env.run()
        assert all(e.processed for e in events)
        assert disk.stats.completed == len(units)
        assert disk.queue_length == 0

    @given(
        st.lists(
            st.integers(min_value=0, max_value=scaled_spec(5).total_sectors // 8 - 1),
            min_size=1,
            max_size=15,
        )
    )
    @settings(max_examples=20, deadline=None)
    def test_busy_time_never_exceeds_makespan(self, units):
        env = Environment()
        disk = Disk(env, scaled_spec(5), policy="cvscan")
        for u in units:
            disk.access(u * 8, 8, is_write=False)
        env.run()
        assert disk.stats.busy_ms <= env.now + 1e-9

    @given(
        st.lists(
            st.integers(min_value=0, max_value=scaled_spec(5).total_sectors // 8 - 1),
            min_size=2,
            max_size=15,
        )
    )
    @settings(max_examples=20, deadline=None)
    def test_service_times_positive_and_bounded(self, units):
        spec = scaled_spec(5)
        env = Environment()
        disk = Disk(env, spec, policy="fifo")
        events = [disk.access(u * 8, 8, is_write=False) for u in units]
        env.run()
        # Each 8-sector access: at most max seek + full rotation + transfer.
        ceiling = spec.seek_max_ms + spec.revolution_ms + 8 * spec.sector_time_ms + 1e-6
        for event in events:
            request = event.value
            assert 0 < request.service_ms <= ceiling


class TestSchedulerProperties:
    @given(
        st.lists(st.integers(min_value=0, max_value=900), min_size=1, max_size=30),
        st.sampled_from(["fifo", "sstf", "look", "cvscan", "cvscan+priority"]),
    )
    @settings(max_examples=40, deadline=None)
    def test_conservation(self, cylinders, policy):
        """Everything pushed is popped exactly once, in some order."""
        from tests.disk.test_scheduling import FakeRequest

        scheduler = make_scheduler(policy, cylinders=949)
        for i, cylinder in enumerate(cylinders):
            request = FakeRequest(cylinder=cylinder, tag=i)
            request.kind = "user"
            scheduler.push(request)
        popped = []
        head = 0
        while scheduler:
            request = scheduler.pop(head, 1)
            head = request.cylinder
            popped.append(request.tag)
        assert sorted(popped) == list(range(len(cylinders)))
