"""Unit tests for the disk drive server process."""

import random

import pytest

from repro.disk import Disk, DiskRequest, IBM_0661, scaled_spec
from repro.disk.drive import KIND_RECON, KIND_USER
from repro.sim import Environment


def run_accesses(disk, env, accesses):
    """Drive a closed-loop sequence of (sector, count, is_write)."""

    def body(env):
        for sector, count, is_write in accesses:
            yield disk.access(sector, count, is_write=is_write)

    process = env.process(body(env))
    env.run(until=process)


class TestServiceTiming:
    def test_single_access_components(self):
        env = Environment()
        disk = Disk(env, IBM_0661, policy="fifo")
        run_accesses(disk, env, [(0, 8, False)])
        stats = disk.stats
        # Head starts at cylinder 0 so there is no seek; the transfer is
        # exactly 8 sector times; sectors 0..7 start under the head at
        # t=0, so rotation is zero too.
        assert stats.total_seek_ms == 0.0
        assert stats.total_rotation_ms == pytest.approx(0.0, abs=1e-9)
        assert stats.total_transfer_ms == pytest.approx(8 * IBM_0661.sector_time_ms)

    def test_seek_charged_for_cylinder_moves(self):
        env = Environment()
        disk = Disk(env, IBM_0661, policy="fifo")
        far_sector = 500 * IBM_0661.sectors_per_cylinder
        run_accesses(disk, env, [(far_sector, 8, False)])
        assert disk.stats.total_seek_ms == pytest.approx(
            disk.seek_model.seek_time(500)
        )
        assert disk.head_cylinder == 500

    def test_rotational_wait_bounded_by_one_revolution(self):
        env = Environment()
        disk = Disk(env, scaled_spec(5), policy="fifo")
        rng = random.Random(3)
        accesses = [(rng.randrange(disk.spec.total_sectors // 8) * 8, 8, False) for _ in range(50)]
        run_accesses(disk, env, accesses)
        assert disk.stats.total_rotation_ms <= 50 * disk.spec.revolution_ms

    def test_sequential_track_crossing_uses_skew(self):
        env = Environment()
        disk = Disk(env, IBM_0661, policy="fifo")
        # Read two whole tracks in one request: the head switch lands
        # exactly on the skewed sector 0 of track 1 — zero rotation.
        run_accesses(disk, env, [(0, 96, False)])
        assert disk.stats.total_rotation_ms == pytest.approx(0.0, abs=1e-9)
        assert disk.stats.total_seek_ms == pytest.approx(IBM_0661.head_switch_ms)

    def test_random_read_capacity_matches_paper(self):
        # Section 6: "disks capable of a maximum of about 46 random 4 KB
        # reads per second".
        env = Environment()
        disk = Disk(env, IBM_0661, policy="fifo")
        rng = random.Random(42)
        n = 500
        accesses = [
            (rng.randrange(IBM_0661.total_sectors // 8) * 8, 8, False) for _ in range(n)
        ]
        run_accesses(disk, env, accesses)
        rate = n / (env.now / 1000.0)
        assert rate == pytest.approx(46.0, rel=0.05)

    def test_sequential_full_scan_near_physical_floor(self):
        # Sequential whole-disk read must approach (and never beat) one
        # revolution per track.
        spec = scaled_spec(20)
        env = Environment()
        disk = Disk(env, spec, policy="fifo")
        chunk = spec.sectors_per_cylinder
        accesses = [(s, chunk, False) for s in range(0, spec.total_sectors, chunk)]
        run_accesses(disk, env, accesses)
        floor = spec.full_scan_min_ms()
        assert floor <= env.now <= floor * 1.25


class TestQueueing:
    def test_busy_server_queues_requests(self):
        env = Environment()
        disk = Disk(env, IBM_0661, policy="fifo")
        first = disk.access(0, 8, is_write=False)
        second = disk.access(8, 8, is_write=False)
        env.run()
        assert second.value.start_service_ms >= first.value.complete_ms

    def test_wakeup_after_idle(self):
        env = Environment()
        disk = Disk(env, IBM_0661, policy="fifo")

        def late_submitter(env):
            yield env.timeout(100.0)
            done = disk.access(0, 8, is_write=False)
            request = yield done
            return request.submit_ms

        process = env.process(late_submitter(env))
        assert env.run(until=process) == 100.0

    def test_queue_length_visible(self):
        env = Environment()
        disk = Disk(env, IBM_0661)
        for unit in range(5):
            disk.access(unit * 8, 8, is_write=False)
        assert disk.queue_length >= 4  # one may already be in service


class TestStats:
    def test_kind_accounting(self):
        env = Environment()
        disk = Disk(env, IBM_0661, policy="fifo")
        disk.access(0, 8, is_write=False, kind=KIND_USER)
        disk.access(8, 8, is_write=True, kind=KIND_RECON)
        env.run()
        assert disk.stats.completed == 2
        assert disk.stats.completed_by_kind == {KIND_USER: 1, KIND_RECON: 1}

    def test_busy_time_accumulates(self):
        env = Environment()
        disk = Disk(env, IBM_0661, policy="fifo")
        run_accesses(disk, env, [(0, 8, False), (96, 8, False)])
        assert disk.stats.busy_ms == pytest.approx(env.now)

    def test_response_decomposition(self):
        env = Environment()
        disk = Disk(env, IBM_0661, policy="fifo")
        done = disk.access(0, 8, is_write=False)
        env.run()
        request = done.value
        assert request.response_ms == pytest.approx(
            request.queue_wait_ms + request.service_ms
        )

    def test_empty_request_rejected(self):
        env = Environment()
        disk = Disk(env, IBM_0661)
        with pytest.raises(ValueError):
            disk.submit(DiskRequest(start_sector=0, sector_count=0, is_write=False))


class TestDeterminism:
    def test_identical_runs_identical_timings(self):
        def simulate():
            env = Environment()
            disk = Disk(env, IBM_0661, policy="cvscan")
            rng = random.Random(7)
            accesses = [
                (rng.randrange(IBM_0661.total_sectors // 8) * 8, 8, False)
                for _ in range(100)
            ]
            run_accesses(disk, env, accesses)
            return env.now

        assert simulate() == simulate()
