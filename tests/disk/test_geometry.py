"""Unit tests for disk geometry and address decomposition."""

import pytest

from repro.disk import DiskGeometry, IBM_0661, scaled_spec


class TestLocate:
    def test_first_sector(self):
        assert DiskGeometry(IBM_0661).locate(0) == (0, 0, 0)

    def test_track_boundary(self):
        geometry = DiskGeometry(IBM_0661)
        assert geometry.locate(47) == (0, 0, 47)
        assert geometry.locate(48) == (0, 1, 0)

    def test_cylinder_boundary(self):
        geometry = DiskGeometry(IBM_0661)
        sectors_per_cylinder = 14 * 48
        assert geometry.locate(sectors_per_cylinder - 1) == (0, 13, 47)
        assert geometry.locate(sectors_per_cylinder) == (1, 0, 0)

    def test_last_sector(self):
        geometry = DiskGeometry(IBM_0661)
        assert geometry.locate(IBM_0661.total_sectors - 1) == (948, 13, 47)

    def test_out_of_range_rejected(self):
        geometry = DiskGeometry(IBM_0661)
        with pytest.raises(ValueError):
            geometry.locate(IBM_0661.total_sectors)
        with pytest.raises(ValueError):
            geometry.locate(-1)


class TestSkew:
    def test_track_zero_unskewed(self):
        geometry = DiskGeometry(IBM_0661)
        assert geometry.rotational_position(0, 0, 0) == 0

    def test_skew_accumulates_per_track(self):
        geometry = DiskGeometry(IBM_0661)
        assert geometry.rotational_position(0, 1, 0) == 4
        assert geometry.rotational_position(0, 2, 0) == 8

    def test_skew_wraps(self):
        geometry = DiskGeometry(IBM_0661)
        assert geometry.rotational_position(0, 12, 0) == 0  # 12 * 4 = 48 ≡ 0


class TestSplitByTrack:
    def test_single_track_run(self):
        geometry = DiskGeometry(IBM_0661)
        runs = geometry.split_by_track(10, 8)
        assert len(runs) == 1
        assert runs[0].count == 8
        assert runs[0].cylinder == 0

    def test_cross_track_split(self):
        geometry = DiskGeometry(IBM_0661)
        runs = geometry.split_by_track(44, 8)
        assert [r.count for r in runs] == [4, 4]
        assert runs[0].track == 0
        assert runs[1].track == 1

    def test_full_cylinder_split(self):
        geometry = DiskGeometry(IBM_0661)
        runs = geometry.split_by_track(0, 14 * 48)
        assert len(runs) == 14
        assert all(r.count == 48 for r in runs)
        assert all(r.cylinder == 0 for r in runs)

    def test_counts_sum(self):
        geometry = DiskGeometry(scaled_spec(3))
        for start, count in [(0, 1), (5, 100), (47, 2), (100, 500)]:
            runs = geometry.split_by_track(start, count)
            assert sum(r.count for r in runs) == count

    def test_rotational_starts_reflect_skew(self):
        geometry = DiskGeometry(IBM_0661)
        runs = geometry.split_by_track(44, 8)
        assert runs[0].rotational_start == 44
        assert runs[1].rotational_start == 4  # sector 0 of track 1 sits at slot 4

    def test_overflow_rejected(self):
        geometry = DiskGeometry(scaled_spec(2))
        with pytest.raises(ValueError):
            geometry.split_by_track(geometry.spec.total_sectors - 1, 2)

    def test_empty_transfer_rejected(self):
        with pytest.raises(ValueError):
            DiskGeometry(IBM_0661).split_by_track(0, 0)
