"""Unit tests for the head schedulers."""

from dataclasses import dataclass

import pytest

from repro.disk.scheduling import (
    CvscanScheduler,
    FifoScheduler,
    LookScheduler,
    SstfScheduler,
    make_scheduler,
)


@dataclass
class FakeRequest:
    cylinder: int
    tag: int = 0


def fill(scheduler, cylinders):
    for i, cylinder in enumerate(cylinders):
        scheduler.push(FakeRequest(cylinder=cylinder, tag=i))


class TestFifo:
    def test_arrival_order(self):
        scheduler = FifoScheduler()
        fill(scheduler, [50, 10, 90])
        assert [scheduler.pop(0, 1).cylinder for _ in range(3)] == [50, 10, 90]

    def test_len(self):
        scheduler = FifoScheduler()
        assert not scheduler
        fill(scheduler, [1, 2])
        assert len(scheduler) == 2


class TestSstf:
    def test_picks_nearest(self):
        scheduler = SstfScheduler()
        fill(scheduler, [100, 40, 60])
        assert scheduler.pop(50, 1).cylinder == 40
        assert scheduler.pop(40, -1).cylinder == 60
        assert scheduler.pop(60, 1).cylinder == 100

    def test_tie_breaks_by_arrival(self):
        scheduler = SstfScheduler()
        fill(scheduler, [45, 55])
        assert scheduler.pop(50, 1).tag == 0


class TestLook:
    def test_sweeps_in_direction_first(self):
        scheduler = LookScheduler()
        fill(scheduler, [30, 70, 60])
        # Head at 50 moving up: service 60, 70, then reverse to 30.
        assert scheduler.pop(50, 1).cylinder == 60
        assert scheduler.pop(60, 1).cylinder == 70
        assert scheduler.pop(70, 1).cylinder == 30

    def test_reverses_when_nothing_ahead(self):
        scheduler = LookScheduler()
        fill(scheduler, [10, 20])
        assert scheduler.pop(50, 1).cylinder == 20

    def test_equal_cylinder_counts_as_ahead(self):
        scheduler = LookScheduler()
        fill(scheduler, [50])
        assert scheduler.pop(50, 1).cylinder == 50


class TestCvscan:
    def test_zero_bias_degenerates_to_sstf(self):
        scheduler = CvscanScheduler(cylinders=100, bias_fraction=0.0)
        fill(scheduler, [45, 56])
        # 45 is closer (distance 5 vs 6) even though it is behind.
        assert scheduler.pop(50, 1).cylinder == 45

    def test_large_bias_degenerates_to_scan(self):
        scheduler = CvscanScheduler(cylinders=100, bias_fraction=10.0)
        fill(scheduler, [45, 95])
        # 45 is behind and pays a 1000-cylinder penalty: sweep to 95 first.
        assert scheduler.pop(50, 1).cylinder == 95

    def test_moderate_bias_balances(self):
        scheduler = CvscanScheduler(cylinders=100, bias_fraction=0.2)
        fill(scheduler, [45, 95])
        # Behind cost 5 + 20 = 25, ahead cost 45: the near request wins.
        assert scheduler.pop(50, 1).cylinder == 45

    def test_negative_parameters_rejected(self):
        with pytest.raises(ValueError):
            CvscanScheduler(cylinders=0)
        with pytest.raises(ValueError):
            CvscanScheduler(cylinders=10, bias_fraction=-1)


class TestFactory:
    @pytest.mark.parametrize("name, cls", [
        ("fifo", FifoScheduler),
        ("sstf", SstfScheduler),
        ("look", LookScheduler),
        ("cvscan", CvscanScheduler),
    ])
    def test_known_policies(self, name, cls):
        assert isinstance(make_scheduler(name, cylinders=100), cls)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            make_scheduler("elevator", cylinders=100)
