"""Unit tests for the seek-time model."""

import pytest

from repro.disk import IBM_0661, SeekModel, scaled_spec


class TestCalibration:
    def test_endpoints_exact(self):
        model = SeekModel(IBM_0661)
        assert model.seek_time(1) == pytest.approx(2.0)
        assert model.seek_time(948) == pytest.approx(25.0)

    def test_average_matches_spec(self):
        model = SeekModel(IBM_0661)
        assert model.average_over_random_seeks() == pytest.approx(12.5, abs=1e-6)

    def test_scaled_spec_recalibrates(self):
        # Smaller disks keep the published (min, avg, max), so seek
        # behaviour is preserved at every scale.
        model = SeekModel(scaled_spec(13))
        assert model.seek_time(1) == pytest.approx(2.0)
        assert model.seek_time(12) == pytest.approx(25.0)
        assert model.average_over_random_seeks() == pytest.approx(12.5, abs=1e-6)


class TestShape:
    def test_zero_distance_is_free(self):
        assert SeekModel(IBM_0661).seek_time(0) == 0.0

    def test_monotonically_nondecreasing(self):
        model = SeekModel(IBM_0661)
        times = [model.seek_time(d) for d in range(1, 949)]
        assert all(b >= a - 1e-9 for a, b in zip(times, times[1:]))

    def test_within_bounds(self):
        model = SeekModel(IBM_0661)
        for d in (1, 10, 100, 500, 948):
            assert 2.0 - 1e-9 <= model.seek_time(d) <= 25.0 + 1e-9

    def test_negative_distance_rejected(self):
        with pytest.raises(ValueError):
            SeekModel(IBM_0661).seek_time(-1)

    def test_two_cylinder_degenerate_disk(self):
        model = SeekModel(scaled_spec(2))
        assert model.seek_time(1) == pytest.approx(2.0)
