"""Unit tests for disk specifications."""

import pytest

from repro.disk import IBM_0661, DiskSpec, scaled_spec


class TestIbm0661:
    """The reference drive must match Table 5-1(b) exactly."""

    def test_geometry(self):
        assert IBM_0661.cylinders == 949
        assert IBM_0661.tracks_per_cylinder == 14
        assert IBM_0661.sectors_per_track == 48
        assert IBM_0661.bytes_per_sector == 512

    def test_timing(self):
        assert IBM_0661.revolution_ms == 13.9
        assert IBM_0661.seek_min_ms == 2.0
        assert IBM_0661.seek_avg_ms == 12.5
        assert IBM_0661.seek_max_ms == 25.0
        assert IBM_0661.track_skew_sectors == 4

    def test_capacity_is_about_320_mb(self):
        assert IBM_0661.capacity_bytes == pytest.approx(326e6, rel=0.02)

    def test_sector_time(self):
        assert IBM_0661.sector_time_ms == pytest.approx(13.9 / 48)

    def test_full_scan_is_about_three_minutes(self):
        # The paper: "the three minutes it takes to read all sectors".
        assert IBM_0661.full_scan_min_ms() == pytest.approx(184_675, rel=0.001)

    def test_head_switch_covers_the_skew(self):
        assert IBM_0661.head_switch_ms == pytest.approx(4 * IBM_0661.sector_time_ms)


class TestScaledSpec:
    def test_only_cylinders_change(self):
        spec = scaled_spec(13)
        assert spec.cylinders == 13
        assert spec.sectors_per_track == IBM_0661.sectors_per_track
        assert spec.seek_avg_ms == IBM_0661.seek_avg_ms

    def test_name_reflects_scaling(self):
        assert "c13" in scaled_spec(13).name

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            scaled_spec(1)


class TestValidation:
    def make(self, **overrides):
        base = dict(
            name="test",
            cylinders=10,
            tracks_per_cylinder=2,
            sectors_per_track=8,
            bytes_per_sector=512,
            revolution_ms=10.0,
            seek_min_ms=1.0,
            seek_avg_ms=3.0,
            seek_max_ms=6.0,
            track_skew_sectors=1,
        )
        base.update(overrides)
        return DiskSpec(**base)

    def test_valid_spec(self):
        spec = self.make()
        assert spec.total_sectors == 160
        assert spec.total_tracks == 20

    def test_bad_seek_ordering_rejected(self):
        with pytest.raises(ValueError):
            self.make(seek_avg_ms=10.0)  # avg > max

    def test_zero_geometry_rejected(self):
        with pytest.raises(ValueError):
            self.make(cylinders=0)

    def test_excessive_skew_rejected(self):
        with pytest.raises(ValueError):
            self.make(track_skew_sectors=8)
