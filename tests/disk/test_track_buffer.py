"""Unit tests for the optional track read buffer."""

import pytest

from repro.disk import Disk, IBM_0661
from repro.sim import Environment


def run_sequence(disk, env, accesses):
    def body(env):
        for sector, count, is_write in accesses:
            yield disk.access(sector, count, is_write=is_write)

    env.run(until=env.process(body(env)))


class TestTrackBuffer:
    def test_reread_of_same_track_hits_the_buffer(self):
        env = Environment()
        disk = Disk(env, IBM_0661, policy="fifo", track_buffer=True)
        run_sequence(disk, env, [(0, 8, False), (16, 8, False)])
        assert disk.stats.buffer_hits == 1

    def test_hit_costs_only_the_fixed_overhead(self):
        env = Environment()
        disk = Disk(env, IBM_0661, policy="fifo", track_buffer=True, buffer_hit_ms=0.5)
        run_sequence(disk, env, [(0, 8, False)])
        before = env.now
        run_sequence(disk, env, [(8, 8, False)])
        assert env.now - before == pytest.approx(0.5)

    def test_different_track_misses(self):
        env = Environment()
        disk = Disk(env, IBM_0661, policy="fifo", track_buffer=True)
        run_sequence(disk, env, [(0, 8, False), (48, 8, False)])  # track 1
        assert disk.stats.buffer_hits == 0

    def test_write_to_buffered_track_invalidates(self):
        env = Environment()
        disk = Disk(env, IBM_0661, policy="fifo", track_buffer=True)
        run_sequence(
            disk, env,
            [(0, 8, False), (8, 8, True), (16, 8, False)],
        )
        assert disk.stats.buffer_hits == 0

    def test_writes_never_hit(self):
        env = Environment()
        disk = Disk(env, IBM_0661, policy="fifo", track_buffer=True)
        run_sequence(disk, env, [(0, 8, False), (16, 8, True)])
        assert disk.stats.buffer_hits == 0

    def test_multi_track_read_does_not_hit(self):
        env = Environment()
        disk = Disk(env, IBM_0661, policy="fifo", track_buffer=True)
        # Read spanning tracks 0-1: the buffer holds the *last* track
        # read (track 1), so re-reading track 0 misses...
        run_sequence(disk, env, [(0, 96, False), (0, 8, False)])
        assert disk.stats.buffer_hits == 0
        # ...and that miss re-buffered track 0, so track 0 now hits.
        run_sequence(disk, env, [(16, 8, False)])
        assert disk.stats.buffer_hits == 1

    def test_disabled_by_default(self):
        env = Environment()
        disk = Disk(env, IBM_0661, policy="fifo")
        run_sequence(disk, env, [(0, 8, False), (16, 8, False)])
        assert disk.stats.buffer_hits == 0
        assert not disk.track_buffer
