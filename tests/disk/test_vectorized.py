"""The vectorized service-time kernel: exact equality with the scalar
reference path, the kernel switch, and the SPTF consumer."""

import typing

import hypothesis.strategies as st
import numpy as np
import pytest
from hypothesis import given, settings

from repro.disk import IBM_0661
from repro.disk.scheduling.sptf import SptfScheduler
from repro.disk.vectorized import (
    AUTO_THRESHOLD,
    ENV_VAR,
    MODES,
    kernel_mode,
    model_for,
    service_times,
    service_times_scalar,
    service_times_vectorized,
)

SPT = IBM_0661.sectors_per_track
TOTAL = IBM_0661.total_sectors


class Candidate(typing.NamedTuple):
    start_sector: int
    sector_count: int


def _clamp(start: int, count: int) -> Candidate:
    return Candidate(start, min(count, TOTAL - start))


#: Random batches biased toward interesting shapes: single sectors,
#: exact-track transfers, and multi-track chains (the ragged tail).
_requests = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=TOTAL - 1),
        st.one_of(
            st.integers(min_value=1, max_value=8),
            st.sampled_from([SPT, SPT + 3, 2 * SPT, 3 * SPT]),
        ),
    ),
    min_size=1,
    max_size=32,
)


class TestExactEquality:
    @given(
        _requests,
        st.integers(min_value=0, max_value=IBM_0661.cylinders - 1),
        st.floats(min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False),
    )
    @settings(max_examples=150, deadline=None)
    def test_vectorized_matches_scalar_bit_for_bit(self, raw, head, start_ms):
        # EXACT float equality is the contract — not approx. Any ULP of
        # drift would let the kernel switch change simulation results.
        model = model_for(IBM_0661)
        batch = [_clamp(start, count) for start, count in raw]
        scalar = service_times_scalar(model, head, start_ms, batch)
        vectorized = service_times_vectorized(model, head, start_ms, batch)
        assert list(vectorized) == scalar

    def test_empty_batch(self):
        model = model_for(IBM_0661)
        assert service_times_scalar(model, 0, 0.0, []) == []
        assert len(service_times_vectorized(model, 0, 0.0, [])) == 0

    def test_ragged_tail_lanes_match(self):
        # One single-sector lane next to a three-track chain: the chain
        # keeps running after the short lane is exhausted, which must
        # not perturb the short lane's clock.
        model = model_for(IBM_0661)
        batch = [Candidate(5, 1), Candidate(10 * SPT, 3 * SPT)]
        scalar = service_times_scalar(model, 3, 7.25, batch)
        vectorized = service_times_vectorized(model, 3, 7.25, batch)
        assert list(vectorized) == scalar


class TestKernelSwitch:
    def test_default_is_auto(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        assert kernel_mode() == "auto"

    @pytest.mark.parametrize("mode", MODES)
    def test_env_var_selects(self, monkeypatch, mode):
        monkeypatch.setenv(ENV_VAR, mode.upper() + " ")  # normalized
        assert kernel_mode() == mode

    def test_explicit_override_beats_env(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "scalar")
        assert kernel_mode("vectorized") == "vectorized"

    def test_unknown_mode_rejected(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "gpu")
        with pytest.raises(ValueError, match="unknown disk kernel mode"):
            kernel_mode()
        with pytest.raises(ValueError):
            kernel_mode("nope")

    def test_auto_dispatches_on_threshold(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        model = model_for(IBM_0661)
        small = [Candidate(i * 100, 1) for i in range(AUTO_THRESHOLD - 1)]
        large = small + [Candidate(0, 1)]
        # Below the crossover auto stays scalar (a list); at or above it
        # takes the numpy batch (an ndarray). Values agree either way.
        assert isinstance(service_times(model, 0, 0.0, small), list)
        assert isinstance(service_times(model, 0, 0.0, large), np.ndarray)

    def test_forced_modes_agree(self, monkeypatch):
        model = model_for(IBM_0661)
        batch = [Candidate(i * 997, 1 + i % 5) for i in range(10)]
        monkeypatch.setenv(ENV_VAR, "vectorized")
        forced_vec = service_times(model, 2, 3.0, batch)
        monkeypatch.setenv(ENV_VAR, "scalar")
        forced_scalar = service_times(model, 2, 3.0, batch)
        assert isinstance(forced_vec, np.ndarray)
        assert isinstance(forced_scalar, list)
        assert list(forced_vec) == forced_scalar


class _FakeEnv:
    now = 12.5


class _FakeDisk:
    spec = IBM_0661
    env = _FakeEnv()


class TestSptfConsumer:
    def _queue(self):
        return [
            Candidate((i * 7919 * SPT + i * 13) % (TOTAL - 4 * SPT), 1 + i % 7)
            for i in range(12)
        ]

    def _pop_order(self, monkeypatch, mode):
        monkeypatch.setenv(ENV_VAR, mode)
        scheduler = SptfScheduler()
        scheduler.bind_disk(_FakeDisk())
        for request in self._queue():
            scheduler.push(request)
        order = []
        head = 0
        while scheduler:
            popped = scheduler.pop(head, 1)
            order.append(popped)
            head = popped.start_sector // IBM_0661.sectors_per_cylinder
        return order

    def test_pop_order_identical_under_both_kernels(self, monkeypatch):
        assert self._pop_order(monkeypatch, "scalar") == self._pop_order(
            monkeypatch, "vectorized"
        )

    def test_pop_without_bind_disk_raises(self):
        scheduler = SptfScheduler()
        scheduler.push(Candidate(0, 1))
        scheduler.push(Candidate(100, 1))
        with pytest.raises(RuntimeError, match="bind_disk"):
            scheduler.pop(0, 1)

    def test_singleton_queue_skips_pricing(self):
        # One queued request needs no pricing, hence no bound disk.
        scheduler = SptfScheduler()
        only = Candidate(7, 2)
        scheduler.push(only)
        assert scheduler.pop(0, 1) is only
