"""Unit tests for experiment layout construction."""

import time

import pytest

from repro.experiments.builders import (
    PAPER_NUM_DISKS,
    PAPER_STRIPE_SIZES,
    alpha_of,
    build_layout,
    design_for,
    dual_design_for,
)
from repro.layout import DeclusteredLayout, LeftSymmetricRaid5Layout
from repro.layout.arithmetic import PermutationStripingLayout
from repro.layout.dual import CyclicDualRaid6Layout, DualDeclusteredLayout


class TestBuildLayout:
    def test_g_equals_c_gives_raid5(self):
        layout = build_layout(21, 21)
        assert isinstance(layout, LeftSymmetricRaid5Layout)

    @pytest.mark.parametrize("g", [g for g in PAPER_STRIPE_SIZES if g != 21])
    def test_declustered_layouts_have_requested_g(self, g):
        layout = build_layout(21, g)
        assert isinstance(layout, DeclusteredLayout)
        assert layout.stripe_size == g
        assert layout.num_disks == 21

    def test_paper_grid_alphas(self):
        alphas = [round(alpha_of(PAPER_NUM_DISKS, g), 2) for g in PAPER_STRIPE_SIZES]
        assert alphas == [0.10, 0.15, 0.20, 0.25, 0.45, 0.85, 1.00]

    def test_design_for_prefers_small_designs(self):
        # alpha = 0.85 must come from the 70-tuple complement design,
        # not the 1,330-tuple complete design the paper had to use.
        design = design_for(21, 18)
        assert design.b == 70

    def test_design_validates(self):
        for g in PAPER_STRIPE_SIZES:
            if g == 21:
                continue
            design_for(21, g).validate()


class TestAutoLayoutSelection:
    def test_auto_serves_large_prime_widths_arithmetically(self):
        # The catalog has no v=1009 designs; its closest-feasible-alpha
        # substitute would be a near-complete design (k=1008, b=1009)
        # whose O(b * k**2) validation takes the better part of an hour.
        # Auto must route straight to the arithmetic construction with
        # the requested G — and do so fast.
        started = time.perf_counter()
        layout = build_layout(1009, 10)
        elapsed = time.perf_counter() - started
        assert isinstance(layout, PermutationStripingLayout)
        assert layout.num_disks == 1009 and layout.stripe_size == 10
        assert layout.mapping_table_units == 0
        assert elapsed < 5.0, f"auto selection took {elapsed:.1f}s"

    def test_auto_serves_large_dual_widths_arithmetically(self):
        layout = build_layout(1009, 10, syndromes=2)
        assert isinstance(layout, PermutationStripingLayout)
        assert layout.num_syndromes == 2
        assert layout.mapping_table_units == 0

    def test_auto_prefers_requested_g_over_substitution_on_primes(self):
        # C=23 G=7 has no exact catalog design and the complete design
        # is over the table cap; permutation striping serves the exact
        # requested geometry instead of a neighboring alpha.
        layout = build_layout(23, 7)
        assert isinstance(layout, PermutationStripingLayout)
        assert layout.num_disks == 23 and layout.stripe_size == 7

    def test_auto_keeps_paper_substitution_on_small_composite_widths(self):
        # C=21 G=7: no exact design, no arithmetic construction — the
        # paper's closest-feasible-alpha policy still applies (the
        # registered G=6 design, alpha 0.25, is nearest to 0.30).
        layout = build_layout(21, 7)
        assert isinstance(layout, DeclusteredLayout)
        assert layout.stripe_size == 6

    def test_paper_grid_still_served_by_tables(self):
        for g in PAPER_STRIPE_SIZES:
            if g == 21:
                continue
            assert isinstance(build_layout(21, g), DeclusteredLayout)


class TestDualBuildLayout:
    def test_g_equals_c_gives_cyclic_raid6(self):
        layout = build_layout(21, 21, syndromes=2)
        assert isinstance(layout, CyclicDualRaid6Layout)
        assert layout.num_syndromes == 2

    @pytest.mark.parametrize("g", [4, 5, 6, 10])
    def test_declustered_dual_layouts_have_requested_shape(self, g):
        layout = build_layout(21, g, syndromes=2)
        assert isinstance(layout, DualDeclusteredLayout)
        assert layout.num_syndromes == 2
        assert layout.stripe_size == g
        assert layout.num_disks == 21
        assert layout.data_units_per_stripe == g - 2

    def test_planar_pair_uses_the_cyclic_pq_design(self):
        from repro.designs.tdesigns import is_t_balanced, t_lambda

        # C = G(G-1)+1 with a planar difference set: 21 = 5*4+1. The
        # projective-plane design routes every disk pair through
        # exactly one stripe (lambda_2 = 1).
        design = dual_design_for(21, 5)
        assert design.v == 21 and design.k == 5
        assert is_t_balanced(design, 2)
        assert t_lambda(design, 2) == 1

    def test_power_of_two_g4_uses_the_quadruple_system(self):
        from repro.designs.tdesigns import is_t_balanced

        design = dual_design_for(8, 4)
        assert design.v == 8 and design.k == 4
        assert is_t_balanced(design, 3)

    def test_other_pairs_fall_back_to_the_catalog(self):
        layout = build_layout(21, 6, syndromes=2)
        assert layout.stripe_size == 6
