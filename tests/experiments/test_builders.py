"""Unit tests for experiment layout construction."""

import pytest

from repro.experiments.builders import (
    PAPER_NUM_DISKS,
    PAPER_STRIPE_SIZES,
    alpha_of,
    build_layout,
    design_for,
)
from repro.layout import DeclusteredLayout, LeftSymmetricRaid5Layout


class TestBuildLayout:
    def test_g_equals_c_gives_raid5(self):
        layout = build_layout(21, 21)
        assert isinstance(layout, LeftSymmetricRaid5Layout)

    @pytest.mark.parametrize("g", [g for g in PAPER_STRIPE_SIZES if g != 21])
    def test_declustered_layouts_have_requested_g(self, g):
        layout = build_layout(21, g)
        assert isinstance(layout, DeclusteredLayout)
        assert layout.stripe_size == g
        assert layout.num_disks == 21

    def test_paper_grid_alphas(self):
        alphas = [round(alpha_of(PAPER_NUM_DISKS, g), 2) for g in PAPER_STRIPE_SIZES]
        assert alphas == [0.10, 0.15, 0.20, 0.25, 0.45, 0.85, 1.00]

    def test_design_for_prefers_small_designs(self):
        # alpha = 0.85 must come from the 70-tuple complement design,
        # not the 1,330-tuple complete design the paper had to use.
        design = design_for(21, 18)
        assert design.b == 70

    def test_design_validates(self):
        for g in PAPER_STRIPE_SIZES:
            if g == 21:
                continue
            design_for(21, g).validate()
