"""Tests for the Monte Carlo fault campaign experiment."""

import json

import pytest

from repro.experiments import campaign
from repro.experiments.runner import ScenarioConfig, run_scenario
from repro.faults.profile import MS_PER_HOUR, FaultProfile
from repro.sweep import SweepOptions


def campaign_config(**overrides):
    kwargs = dict(
        stripe_size=4,
        user_rate_per_s=0.0,
        read_fraction=0.5,
        mode="campaign",
        recon_workers=8,
        scale=campaign.MICRO,
        seed=1992,
        spares=0,
        fault_profile=FaultProfile(
            disk_mttf_hours=1000.0 / MS_PER_HOUR,  # 1000 ms mean lifetime
            seed=1992,
        ),
        mission_ms=60_000.0,
    )
    kwargs.update(overrides)
    return ScenarioConfig(**kwargs)


class TestCampaignConfig:
    def test_campaign_mode_requires_a_fault_profile(self):
        with pytest.raises(ValueError, match="fault_profile"):
            ScenarioConfig(
                stripe_size=4, user_rate_per_s=0.0, read_fraction=0.5,
                mode="campaign",
            )

    def test_config_with_profile_survives_json_round_trip(self):
        config = campaign_config()
        rebuilt = ScenarioConfig.from_key(json.loads(json.dumps(config.to_key())))
        assert rebuilt == config
        assert rebuilt.fault_profile == config.fault_profile


class TestForcedDataLoss:
    def test_double_failure_is_recorded_not_raised(self):
        # Acceptance: 1000 ms disk lifetimes with no spares guarantee a
        # second concurrent failure long before the mission ends — the
        # scenario must terminate with a recorded data-loss event, not
        # an unhandled exception.
        result = run_scenario(campaign_config())
        summary = result.fault_summary
        assert summary is not None
        assert summary["data_lost"]
        assert summary["data_loss_events"] == 1
        assert len(summary["lost_disks"]) == 1
        assert summary["exposed_stripes"] > 0
        assert 0 < summary["time_to_data_loss_ms"] < summary["mission_ms"]
        # The campaign stops at the loss, not at the mission horizon.
        assert result.simulated_ms == summary["time_to_data_loss_ms"]
        assert summary["disk_failures"] == 2
        assert summary["repairs_completed"] == 0

    def test_spared_campaign_survives_longer_than_unspared(self):
        # Lifetimes long enough (200 s) that a ~2 s repair usually
        # finishes before the next failure: sparing must now buy
        # mission time that the unspared array cannot reach.
        profile = FaultProfile(disk_mttf_hours=200_000.0 / MS_PER_HOUR, seed=1992)
        unspared = run_scenario(campaign_config(fault_profile=profile))
        spared = run_scenario(
            campaign_config(
                fault_profile=profile, spares=64, replacement_delay_ms=0.0
            )
        )
        assert unspared.fault_summary["data_lost"]
        assert spared.fault_summary["repairs_completed"] >= 1
        assert spared.simulated_ms > unspared.simulated_ms


class TestCampaignExperiment:
    @pytest.fixture(scope="class")
    def rows(self):
        # One stripe size, four 6-hour missions: ~10 s of wall time.
        return campaign.run(
            scale="tiny",
            stripe_sizes=(4,),
            seed=1992,
            trials=4,
            mission_hours=6.0,
            options=SweepOptions(cache=None),
        )

    def test_row_schema(self, rows):
        assert len(rows) == 1
        row = rows[0]
        assert row["g"] == 4
        assert row["alpha"] == round(3 / 20, 3)
        assert row["trials"] == 4
        assert 0 <= row["losses"] <= 4
        assert row["loss_fraction"] == round(row["losses"] / 4, 3)

    def test_empirical_mttdl_within_2x_of_markov(self, rows):
        # Acceptance: with a fixed seed, the measured MTTDL lands
        # within a factor of two of the Markov approximation fed with
        # the campaign's own mean repair time.
        row = rows[0]
        assert row["losses"] >= 1
        assert row["mean_repair_s"] > 0
        assert 0.5 <= row["mttdl_ratio"] <= 2.0

    def test_format_rows_mentions_the_model(self, rows):
        text = campaign.format_rows(rows)
        assert "MTTDL" in text
        assert "Markov" in text
