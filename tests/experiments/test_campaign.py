"""Tests for the Monte Carlo fault campaign experiment."""

import json

import pytest

from repro.experiments import campaign
from repro.experiments.runner import ScenarioConfig, run_scenario
from repro.faults.profile import MS_PER_HOUR, FaultProfile
from repro.sweep import SweepOptions


def campaign_config(**overrides):
    kwargs = dict(
        stripe_size=4,
        user_rate_per_s=0.0,
        read_fraction=0.5,
        mode="campaign",
        recon_workers=8,
        scale=campaign.MICRO,
        seed=1992,
        spares=0,
        fault_profile=FaultProfile(
            disk_mttf_hours=1000.0 / MS_PER_HOUR,  # 1000 ms mean lifetime
            seed=1992,
        ),
        mission_ms=60_000.0,
    )
    kwargs.update(overrides)
    return ScenarioConfig(**kwargs)


class TestCampaignConfig:
    def test_campaign_mode_requires_a_fault_profile(self):
        with pytest.raises(ValueError, match="fault_profile"):
            ScenarioConfig(
                stripe_size=4, user_rate_per_s=0.0, read_fraction=0.5,
                mode="campaign",
            )

    def test_config_with_profile_survives_json_round_trip(self):
        config = campaign_config()
        rebuilt = ScenarioConfig.from_key(json.loads(json.dumps(config.to_key())))
        assert rebuilt == config
        assert rebuilt.fault_profile == config.fault_profile


class TestForcedDataLoss:
    def test_double_failure_is_recorded_not_raised(self):
        # Acceptance: 1000 ms disk lifetimes with no spares guarantee a
        # second concurrent failure long before the mission ends — the
        # scenario must terminate with a recorded data-loss event, not
        # an unhandled exception.
        result = run_scenario(campaign_config())
        summary = result.fault_summary
        assert summary is not None
        assert summary["data_lost"]
        assert summary["data_loss_events"] == 1
        assert len(summary["lost_disks"]) == 1
        assert summary["exposed_stripes"] > 0
        assert 0 < summary["time_to_data_loss_ms"] < summary["mission_ms"]
        # The campaign stops at the loss, not at the mission horizon.
        assert result.simulated_ms == summary["time_to_data_loss_ms"]
        assert summary["disk_failures"] == 2
        assert summary["repairs_completed"] == 0

    def test_spared_campaign_survives_longer_than_unspared(self):
        # Lifetimes long enough (200 s) that a ~2 s repair usually
        # finishes before the next failure: sparing must now buy
        # mission time that the unspared array cannot reach.
        profile = FaultProfile(disk_mttf_hours=200_000.0 / MS_PER_HOUR, seed=1992)
        unspared = run_scenario(campaign_config(fault_profile=profile))
        spared = run_scenario(
            campaign_config(
                fault_profile=profile, spares=64, replacement_delay_ms=0.0
            )
        )
        assert unspared.fault_summary["data_lost"]
        assert spared.fault_summary["repairs_completed"] >= 1
        assert spared.simulated_ms > unspared.simulated_ms


class TestCampaignExperiment:
    @pytest.fixture(scope="class")
    def rows(self):
        # One stripe size, four 6-hour missions: ~10 s of wall time.
        return campaign.run(
            scale="tiny",
            stripe_sizes=(4,),
            seed=1992,
            trials=4,
            mission_hours=6.0,
            options=SweepOptions(cache=None),
        )

    def test_row_schema(self, rows):
        assert len(rows) == 1
        row = rows[0]
        assert row["g"] == 4
        assert row["alpha"] == round(3 / 20, 3)
        assert row["trials"] == 4
        assert 0 <= row["losses"] <= 4
        assert row["loss_fraction"] == round(row["losses"] / 4, 3)

    def test_empirical_mttdl_within_2x_of_markov(self, rows):
        # Acceptance: with a fixed seed, the measured MTTDL lands
        # within a factor of two of the Markov approximation fed with
        # the campaign's own mean repair time.
        row = rows[0]
        assert row["losses"] >= 1
        assert row["mean_repair_s"] > 0
        assert 0.5 <= row["mttdl_ratio"] <= 2.0

    def test_format_rows_mentions_the_model(self, rows):
        text = campaign.format_rows(rows)
        assert "MTTDL" in text
        assert "Markov" in text


def dual_campaign_config(**overrides):
    kwargs = dict(
        stripe_size=5,
        num_disks=21,
        syndromes=2,
        user_rate_per_s=0.0,
        read_fraction=0.5,
        mode="campaign",
        recon_workers=8,
        scale=campaign.MICRO,
        seed=1992,
        spares=0,
        fault_profile=FaultProfile(
            disk_mttf_hours=20_000.0 / MS_PER_HOUR,  # 20 s mean lifetime
            seed=1992,
        ),
        mission_ms=5_000.0,
    )
    kwargs.update(overrides)
    return ScenarioConfig(**kwargs)


class TestDualVersusSingleControl:
    """Acceptance: with the identical fault schedule (same profile
    seed), the second concurrent failure that loses data on a
    single-syndrome array is absorbed by the dual-syndrome one."""

    def test_single_control_loses_where_dual_survives(self):
        # 20 s lifetimes on 21 disks, no spares: failure #2 lands at
        # ~4.3 s and failure #3 at ~5.7 s, so a 5 s mission separates
        # the two tolerances.
        single = run_scenario(dual_campaign_config(syndromes=1))
        dual = run_scenario(dual_campaign_config())
        assert single.fault_summary["data_lost"]
        assert single.fault_summary["data_loss_events"] == 1
        assert single.fault_summary["disk_failures"] == 2
        assert not dual.fault_summary["data_lost"]
        assert dual.fault_summary["data_loss_events"] == 0
        assert dual.fault_summary["lost_disks"] == []
        assert dual.fault_summary["exposed_stripes"] == 0
        # The dual array absorbed the same double failure and ran the
        # mission to its horizon; the single control stopped at loss.
        assert dual.fault_summary["disk_failures"] >= 2
        assert dual.simulated_ms == 5_000.0
        assert single.simulated_ms < 5_000.0

    def test_third_failure_is_recorded_not_raised(self):
        result = run_scenario(dual_campaign_config(mission_ms=60_000.0))
        summary = result.fault_summary
        assert summary["data_lost"]
        assert summary["data_loss_events"] == 1
        assert summary["disk_failures"] == 3
        assert result.simulated_ms == summary["time_to_data_loss_ms"]


class TestDualCampaignTwoFaultMTTDL:
    """Acceptance: the empirical two-fault MTTDL of an accelerated P+Q
    campaign matches the extended (three-state) Markov chain fed with
    the campaign's own measured repair time."""

    @pytest.fixture(scope="class")
    def row(self):
        # 0.1 h disk MTTF against ~2 s repairs: every trial reaches a
        # triple concurrent failure well inside a 2 h mission, so three
        # trials give three loss observations.
        trials = 3
        summaries = []
        for trial in range(trials):
            config = dual_campaign_config(
                spares=512,
                replacement_delay_ms=1_000.0,
                fault_profile=FaultProfile(
                    disk_mttf_hours=0.1, seed=2026 + trial
                ),
                mission_ms=2.0 * MS_PER_HOUR,
            )
            summaries.append(campaign.trial_summary(run_scenario(config)))
        return campaign.rows_from_summaries(
            summaries, trials, mission_hours=2.0, disk_mttf_hours=0.1
        )[0]

    def test_every_trial_observes_a_two_fault_loss(self, row):
        assert row["syndromes"] == 2
        assert row["losses"] == 3

    def test_empirical_mttdl_within_tolerance_of_two_fault_markov(self, row):
        assert row["mean_repair_s"] > 0
        assert row["analytic_mttdl_h"] is not None
        assert 0.4 <= row["mttdl_ratio"] <= 2.5

    def test_dual_rows_format_with_the_two_fault_title(self, row):
        text = campaign.format_rows([row])
        assert "P+Q" in text
        assert "two-fault" in text


class TestDualCampaignSpec:
    def test_spec_configs_carry_syndromes(self):
        spec = campaign.campaign_spec(
            "tiny", stripe_sizes=(5,), trials=2, syndromes=2
        )
        configs = spec.configs()
        assert len(configs) == 2
        assert all(config.syndromes == 2 for config in configs)
        assert all(config.to_key()["syndromes"] == 2 for config in configs)

    def test_summary_without_syndromes_key_aggregates_as_single(self):
        # Checkpoints written before the dual campaign existed lack the
        # syndromes key; they must aggregate with the one-fault chain.
        legacy = {
            "g": 4, "alpha": 0.15, "num_disks": 21, "data_lost": True,
            "simulated_ms": 3_600_000.0, "mean_repair_ms": 2_000.0,
        }
        row = campaign.rows_from_summaries([legacy], trials=1)[0]
        assert row["syndromes"] == 1
        assert row["analytic_mttdl_h"] is not None
