"""Unit tests for ASCII chart rendering."""

import pytest

from repro.experiments.charting import ascii_chart, chart_rows


class TestAsciiChart:
    def test_marks_appear_for_each_series(self):
        text = ascii_chart(
            {"one": [(0, 0), (1, 1)], "two": [(0, 1), (1, 0)]},
            width=20,
            height=5,
        )
        assert "o" in text
        assert "x" in text
        assert "o = one" in text
        assert "x = two" in text

    def test_title_and_ranges(self):
        text = ascii_chart(
            {"s": [(0.1, 10.0), (0.45, 25.0), (1.0, 40.0)]},
            title="Recon time",
            x_label="alpha",
            y_label="seconds",
        )
        assert text.splitlines()[0] == "Recon time"
        assert "alpha: 0.1 .. 1" in text
        assert "seconds" in text

    def test_extremes_land_on_edges(self):
        text = ascii_chart({"s": [(0, 0), (10, 10)]}, width=10, height=4)
        rows = [line[1:] for line in text.splitlines() if line.startswith("|")]
        assert rows[0].rstrip().endswith("o")   # max y at top-right
        assert rows[-1].startswith("o")          # min y at bottom-left

    def test_flat_series_still_renders(self):
        text = ascii_chart({"s": [(0, 5.0), (1, 5.0)]}, width=10, height=4)
        assert "o" in text

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_chart({})


class TestChartRows:
    def test_groups_by_key_fields(self):
        rows = [
            {"rate": 105, "alpha": 0.15, "recon": 40.0},
            {"rate": 105, "alpha": 1.0, "recon": 80.0},
            {"rate": 210, "alpha": 0.15, "recon": 60.0},
            {"rate": 210, "alpha": 1.0, "recon": 120.0},
        ]
        text = chart_rows(
            rows, key_fields=["rate"], x_field="alpha", y_field="recon",
            width=30, height=8,
        )
        assert "o = 105" in text
        assert "x = 210" in text
