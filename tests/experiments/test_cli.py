"""CLI smoke tests (fast experiments only)."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_all_experiments_are_choices(self):
        parser = build_parser()
        args = parser.parse_args(["fig4-3"])
        assert args.experiment == "fig4-3"
        assert args.scale == "tiny"

    def test_scale_option(self):
        args = build_parser().parse_args(["table5-1", "--scale", "paper"])
        assert args.scale == "paper"

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])


class TestMain:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_fig4_3_runs(self, capsys):
        assert main(["fig4-3"]) == 0
        assert "Figure 4-3" in capsys.readouterr().out

    def test_table5_1_runs(self, capsys):
        assert main(["table5-1", "--scale", "paper"]) == 0
        out = capsys.readouterr().out
        assert "IBM-0661-370" in out
        assert "949" in out
