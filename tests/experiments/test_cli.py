"""CLI smoke tests (fast experiments only)."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_all_experiments_are_choices(self):
        parser = build_parser()
        args = parser.parse_args(["fig4-3"])
        assert args.experiment == "fig4-3"
        assert args.scale == "tiny"

    def test_scale_option(self):
        args = build_parser().parse_args(["table5-1", "--scale", "paper"])
        assert args.scale == "paper"

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])


class TestMain:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_fig4_3_runs(self, capsys):
        assert main(["fig4-3"]) == 0
        assert "Figure 4-3" in capsys.readouterr().out

    def test_table5_1_runs(self, capsys):
        assert main(["table5-1", "--scale", "paper"]) == 0
        out = capsys.readouterr().out
        assert "IBM-0661-370" in out
        assert "949" in out


class TestSweepFlags:
    def test_defaults(self):
        args = build_parser().parse_args(["fig6-1"])
        assert args.jobs == 1
        assert args.no_cache is False
        assert args.cache_dir is None

    def test_jobs_and_no_cache_parse(self):
        args = build_parser().parse_args(["fig6-1", "--jobs", "4", "--no-cache"])
        assert args.jobs == 4
        assert args.no_cache is True

    def test_options_default_to_the_shared_cache(self):
        from repro.cli import sweep_options_from_args
        from repro.sweep import default_cache_dir

        options = sweep_options_from_args(build_parser().parse_args(["fig6-1"]))
        assert options.jobs == 1
        assert options.cache == default_cache_dir()
        assert options.progress is True

    def test_no_cache_disables_the_cache(self):
        from repro.cli import sweep_options_from_args

        args = build_parser().parse_args(["fig6-1", "--no-cache"])
        assert sweep_options_from_args(args).cache is None

    def test_cache_dir_relocates_the_cache(self):
        from repro.cli import sweep_options_from_args

        args = build_parser().parse_args(["fig6-1", "--cache-dir", "/tmp/sc"])
        assert sweep_options_from_args(args).cache == "/tmp/sc"

    def test_main_plumbs_options_into_the_runner(self, capsys, monkeypatch):
        from repro.experiments import fig6

        captured = {}

        def fake_run(scale, options=None):
            captured["scale"] = scale
            captured["options"] = options
            return [{"alpha": 0.2, "g": 4, "rate": 105.0, "mode": "fault-free",
                     "mean_response_ms": 20.0, "p90_ms": 30.0, "requests": 100}]

        monkeypatch.setattr(fig6, "run_fig6_1", fake_run)
        assert main(["fig6-1", "--jobs", "3", "--no-cache"]) == 0
        assert captured["scale"] == "tiny"
        assert captured["options"].jobs == 3
        assert captured["options"].cache is None
        assert "Figure 6-1" in capsys.readouterr().out

    def test_jobs_must_be_positive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig6-1", "--jobs", "0"])
