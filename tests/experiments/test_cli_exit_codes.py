"""Exit-code convention across every ``repro`` subcommand.

One convention, asserted in one place: 0 success, 1 runtime failure,
2 usage error — always with a one-line stderr message, never a
traceback. Argparse rejections (which raise SystemExit) and explicit
returns are normalized through the same helper so new subcommands
cannot quietly drift.
"""

import pytest

from repro import cli
from repro.sweep import SweepError


def run_cli(argv):
    """repro's main(), with argparse SystemExit folded into the code."""
    try:
        return cli.main(argv)
    except SystemExit as exit_:  # argparse error path
        return exit_.code


BAD_USAGE_CASES = [
    pytest.param(["no-such-experiment"], id="unknown-experiment"),
    pytest.param(["fig6-1", "--scale", "galactic"], id="bad-scale"),
    pytest.param(["fig6-1", "--jobs", "0"], id="non-positive-jobs"),
    pytest.param(["report"], id="report-no-paths"),
    pytest.param(
        ["report", "/no/such/path/anywhere.json"], id="report-missing-path"
    ),
    pytest.param(["bench", "--scale", "galactic"], id="bench-bad-scale"),
    pytest.param(["serve", "--port", "99999"], id="serve-bad-port"),
    pytest.param(["serve", "--workers", "0"], id="serve-bad-workers"),
    pytest.param(["serve", "--max-jobs", "0"], id="serve-bad-max-jobs"),
    pytest.param(["job"], id="job-no-command"),
    pytest.param(
        ["job", "submit", "/no/such/spec.json"], id="job-missing-spec-file"
    ),
    pytest.param(["lint", "--baseline", "/no/such/baseline"], id="lint-missing-baseline"),
]


@pytest.mark.parametrize("argv", BAD_USAGE_CASES)
def test_bad_arguments_exit_2_with_stderr_message(argv, capsys):
    assert run_cli(argv) == 2
    captured = capsys.readouterr()
    assert captured.err.strip(), f"expected a stderr message for {argv}"
    assert "Traceback" not in captured.err


def test_job_submit_rejects_non_json_spec(tmp_path, capsys):
    spec = tmp_path / "spec.json"
    spec.write_text("{not json", encoding="utf-8")
    assert run_cli(["job", "submit", str(spec)]) == 2
    assert "not valid JSON" in capsys.readouterr().err


def test_job_unreachable_server_exits_1(tmp_path, capsys):
    # Port 1 is reserved and never bound in the test environment.
    code = run_cli(
        ["job", "--server", "http://127.0.0.1:1", "--timeout", "5",
         "status", "abc123"]
    )
    assert code == 1
    assert "cannot reach" in capsys.readouterr().err


def test_sweep_error_exits_1_with_message(monkeypatch, capsys):
    def exploding_runner(scale, options):
        raise SweepError("injected: point #0 failed after 2 retries")

    monkeypatch.setitem(
        cli.EXPERIMENTS, "fig6-1", ("patched", exploding_runner)
    )
    assert run_cli(["fig6-1"]) == 1
    captured = capsys.readouterr()
    assert "repro fig6-1: injected" in captured.err
    assert "Traceback" not in captured.err


def test_report_empty_tree_exits_1(tmp_path, capsys):
    assert run_cli(["report", str(tmp_path)]) == 1
    assert "no result documents found" in capsys.readouterr().err
