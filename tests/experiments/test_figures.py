"""Smoke tests for each per-figure experiment module (reduced grids)."""

from repro.experiments import fig4_3, fig6, fig8, fig8_6, table5_1, table8_1
from repro.experiments.scales import ScalePreset

MICRO = ScalePreset(
    name="micro", cylinders=13, steady_duration_ms=2_000.0, warmup_ms=300.0,
    note="test-only",
)


class TestFig43:
    def test_rows_and_formatting(self):
        rows = fig4_3.run()
        assert len(rows) > 50
        text = fig4_3.format_rows(rows)
        assert "Figure 4-3" in text
        assert "alpha" in text

    def test_rows_include_the_paper_designs(self):
        rows = fig4_3.run()
        assert any(r["v"] == 21 and r["k"] == 4 and r["b"] == 105 for r in rows)


class TestTable51:
    def test_reports_the_0661(self):
        rows = table5_1.run(scale="paper")
        values = {r["parameter"]: r["value"] for r in rows}
        assert values["cylinders"] == 949
        assert values["revolution"] == "13.9 ms"

    def test_reports_the_alpha_grid(self):
        text = table5_1.format_rows(table5_1.run(scale="paper"))
        assert "G = 10" in text
        assert "alpha = 0.45" in text


class TestFig6:
    def test_reduced_grid_runs(self):
        rows = fig6.run_figure(
            read_fraction=1.0,
            rates=(105.0,),
            scale=MICRO,
            stripe_sizes=(4, 21),
        )
        assert len(rows) == 4  # 2 G x 1 rate x 2 modes
        by_key = {(r["g"], r["mode"]): r for r in rows}
        # Degraded must be slower than fault-free at the same point.
        assert (
            by_key[(21, "degraded")]["mean_response_ms"]
            > by_key[(21, "fault-free")]["mean_response_ms"]
        )

    def test_formatting(self):
        rows = fig6.run_figure(
            read_fraction=1.0, rates=(105.0,), scale=MICRO, stripe_sizes=(4,)
        )
        text = fig6.format_rows(rows, "Figure 6-1 (smoke)")
        assert "mean resp" in text


class TestFig8:
    def test_reduced_grid_runs(self):
        from repro.recon import BASELINE

        rows = fig8.run_grid(
            workers=4,
            scale=MICRO,
            stripe_sizes=(4,),
            rates=(105.0,),
            algorithms=(BASELINE,),
        )
        assert len(rows) == 1
        row = rows[0]
        assert row["recon_time_s"] > 0
        assert row["user_built_units"] == 0  # baseline gets no free work

    def test_formatting(self):
        from repro.recon import BASELINE

        rows = fig8.run_grid(
            workers=1, scale=MICRO, stripe_sizes=(4,), rates=(105.0,),
            algorithms=(BASELINE,),
        )
        assert "recon time" in fig8.format_rows(rows, "smoke")


class TestTable81:
    def test_reduced_grid_runs(self):
        from repro.recon import BASELINE, REDIRECT

        rows = table8_1.run(
            scale=MICRO,
            workers_list=(4,),
            stripe_sizes=(4,),
            algorithms=(BASELINE, REDIRECT),
        )
        assert len(rows) == 2
        for row in rows:
            assert row["read_ms"] > 0
            assert row["write_ms"] > 0
            assert row["cycles_sampled"] > 0


class TestFig86:
    def test_reduced_grid_runs(self):
        rows = fig8_6.run(scale=MICRO, workers=4, stripe_sizes=(4,))
        assert len(rows) == 3  # three M&L algorithms
        for row in rows:
            assert row["model_s"] > 0
            assert row["simulated_s"] > 0

    def test_model_is_pessimistic_as_the_paper_found(self):
        rows = fig8_6.run(scale=MICRO, workers=4, stripe_sizes=(4,))
        assert all(row["model_over_sim"] > 1.0 for row in rows)
