"""Unit tests for experiment result persistence."""

import pytest

from repro.experiments.persistence import diff_rows, load_rows, save_rows

ROWS = [
    {"alpha": 0.15, "rate": 105, "recon_time_s": 40.0},
    {"alpha": 1.0, "rate": 105, "recon_time_s": 80.0},
]


class TestSaveLoad:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "fig8.json"
        save_rows(path, experiment="fig8-1", scale="tiny", rows=ROWS)
        metadata, rows = load_rows(path)
        assert rows == ROWS
        assert metadata["experiment"] == "fig8-1"
        assert metadata["scale"] == "tiny"
        assert "alpha" in metadata["fields"]

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "nested" / "deeper" / "out.json"
        save_rows(path, experiment="x", scale="tiny", rows=ROWS)
        assert path.exists()

    def test_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "old.json"
        path.write_text('{"format_version": 99, "rows": []}')
        with pytest.raises(ValueError, match="format version"):
            load_rows(path)


class TestDiff:
    def test_joins_on_keys(self):
        current = [
            {"alpha": 0.15, "rate": 105, "recon_time_s": 44.0},
            {"alpha": 1.0, "rate": 105, "recon_time_s": 80.0},
        ]
        changes = diff_rows(ROWS, current, key_fields=["alpha", "rate"],
                            value_field="recon_time_s")
        by_alpha = {c["alpha"]: c for c in changes}
        assert by_alpha[0.15]["ratio"] == pytest.approx(1.1)
        assert by_alpha[1.0]["ratio"] == pytest.approx(1.0)

    def test_unmatched_rows_skipped(self):
        current = [{"alpha": 0.45, "rate": 105, "recon_time_s": 50.0}]
        changes = diff_rows(ROWS, current, key_fields=["alpha", "rate"],
                            value_field="recon_time_s")
        assert changes == []


class TestNonUniformRows:
    def test_fields_are_the_union_of_row_keys(self, tmp_path):
        rows = [
            {"alpha": 0.15, "recon_time_s": 40.0},
            {"alpha": 1.0, "mean_response_ms": 22.5},
            {"rate": 105, "mean_response_ms": 30.0},
        ]
        path = tmp_path / "mixed.json"
        save_rows(path, experiment="mixed", scale="tiny", rows=rows)
        metadata, loaded = load_rows(path)
        assert metadata["fields"] == ["alpha", "mean_response_ms",
                                      "rate", "recon_time_s"]
        assert loaded == rows

    def test_empty_rows(self, tmp_path):
        path = tmp_path / "empty.json"
        save_rows(path, experiment="none", scale="tiny", rows=[])
        metadata, loaded = load_rows(path)
        assert metadata["fields"] == []
        assert loaded == []


class TestCanonicalObjects:
    def test_algorithm_and_config_in_rows(self, tmp_path):
        from repro.experiments import ScenarioConfig
        from repro.recon import REDIRECT

        config = ScenarioConfig(
            stripe_size=4, user_rate_per_s=105.0, read_fraction=0.5,
            algorithm=REDIRECT,
        )
        path = tmp_path / "objects.json"
        save_rows(
            path, experiment="obj", scale="tiny",
            rows=[{"algorithm": REDIRECT, "config": config}],
        )
        _metadata, loaded = load_rows(path)
        assert loaded[0]["algorithm"] == "redirect"
        assert ScenarioConfig.from_key(loaded[0]["config"]) == config

    def test_scale_preset_in_rows(self, tmp_path):
        from repro.experiments.scales import TINY

        path = tmp_path / "preset.json"
        save_rows(path, experiment="p", scale="tiny", rows=[{"scale": TINY}])
        _metadata, loaded = load_rows(path)
        assert loaded[0]["scale"]["cylinders"] == 13

    def test_unserializable_object_rejected(self, tmp_path):
        with pytest.raises(TypeError, match="not JSON serializable"):
            save_rows(tmp_path / "bad.json", experiment="bad", scale="tiny",
                      rows=[{"thing": object()}])
