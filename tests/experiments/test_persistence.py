"""Unit tests for experiment result persistence."""

import pytest

from repro.experiments.persistence import diff_rows, load_rows, save_rows

ROWS = [
    {"alpha": 0.15, "rate": 105, "recon_time_s": 40.0},
    {"alpha": 1.0, "rate": 105, "recon_time_s": 80.0},
]


class TestSaveLoad:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "fig8.json"
        save_rows(path, experiment="fig8-1", scale="tiny", rows=ROWS)
        metadata, rows = load_rows(path)
        assert rows == ROWS
        assert metadata["experiment"] == "fig8-1"
        assert metadata["scale"] == "tiny"
        assert "alpha" in metadata["fields"]

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "nested" / "deeper" / "out.json"
        save_rows(path, experiment="x", scale="tiny", rows=ROWS)
        assert path.exists()

    def test_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "old.json"
        path.write_text('{"format_version": 99, "rows": []}')
        with pytest.raises(ValueError, match="format version"):
            load_rows(path)


class TestDiff:
    def test_joins_on_keys(self):
        current = [
            {"alpha": 0.15, "rate": 105, "recon_time_s": 44.0},
            {"alpha": 1.0, "rate": 105, "recon_time_s": 80.0},
        ]
        changes = diff_rows(ROWS, current, key_fields=["alpha", "rate"],
                            value_field="recon_time_s")
        by_alpha = {c["alpha"]: c for c in changes}
        assert by_alpha[0.15]["ratio"] == pytest.approx(1.1)
        assert by_alpha[1.0]["ratio"] == pytest.approx(1.0)

    def test_unmatched_rows_skipped(self):
        current = [{"alpha": 0.45, "rate": 105, "recon_time_s": 50.0}]
        changes = diff_rows(ROWS, current, key_fields=["alpha", "rate"],
                            value_field="recon_time_s")
        assert changes == []
