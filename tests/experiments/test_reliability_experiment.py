"""Smoke tests for the derived reliability experiment."""

from repro.experiments import reliability
from repro.experiments.scales import ScalePreset

MICRO = ScalePreset(
    name="micro", cylinders=13, steady_duration_ms=2_000.0, warmup_ms=300.0,
    note="test-only",
)


class TestReliabilityExperiment:
    def test_rows_have_all_fields(self):
        rows = reliability.run(scale=MICRO, stripe_sizes=(4,))
        assert len(rows) == 1
        row = rows[0]
        assert row["alpha"] == 0.15
        assert row["repair_hours_full_disk"] > 0
        assert row["mttdl_years"] > 0

    def test_mttdl_decreases_with_alpha(self):
        rows = reliability.run(scale=MICRO, stripe_sizes=(4, 21))
        by_g = {r["g"]: r for r in rows}
        assert by_g[4]["mttdl_years"] > by_g[21]["mttdl_years"]

    def test_formatting(self):
        rows = reliability.run(scale=MICRO, stripe_sizes=(4,))
        text = reliability.format_rows(rows)
        assert "MTTDL" in text
        assert "0.15" in text
