"""Unit tests for report formatting helpers."""

from repro.experiments.reporting import format_table, series_by


class TestFormatTable:
    def test_alignment_and_title(self):
        text = format_table(
            headers=["name", "value"],
            rows=[["alpha", 1], ["longer-name", 22]],
            title="My Table",
        )
        lines = text.splitlines()
        assert lines[0] == "My Table"
        assert lines[1].startswith("name")
        # All rows padded to the same width per column.
        assert lines[3].index("1") == lines[4].index("22")

    def test_no_title(self):
        text = format_table(headers=["x"], rows=[[5]])
        assert text.splitlines()[0] == "x"


class TestSeriesBy:
    def test_grouping_and_sorting(self):
        rows = [
            {"rate": 105, "alpha": 0.45, "y": 2},
            {"rate": 105, "alpha": 0.15, "y": 1},
            {"rate": 210, "alpha": 0.15, "y": 3},
        ]
        series = series_by(rows, key_fields=["rate"], x_field="alpha", y_field="y")
        assert series[(105,)] == [(0.15, 1), (0.45, 2)]
        assert series[(210,)] == [(0.15, 3)]
