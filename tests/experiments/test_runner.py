"""Scenario runner integration tests (micro-sized arrays)."""

import pytest

from repro.experiments import ScenarioConfig, run_scenario
from repro.experiments.scales import ScalePreset
from repro.recon import REDIRECT, USER_WRITES

#: A sub-tiny preset so each runner test stays under a second.
MICRO = ScalePreset(
    name="micro",
    cylinders=13,
    steady_duration_ms=3_000.0,
    warmup_ms=500.0,
    note="test-only",
)


def micro_config(**overrides):
    base = dict(
        stripe_size=4,
        user_rate_per_s=105.0,
        read_fraction=0.5,
        scale=MICRO,
        seed=7,
    )
    base.update(overrides)
    return ScenarioConfig(**base)


class TestConfigValidation:
    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            micro_config(mode="exploded")

    def test_bad_workers_rejected(self):
        with pytest.raises(ValueError):
            micro_config(mode="recon", recon_workers=0)

    def test_alpha(self):
        assert micro_config(stripe_size=5).alpha == pytest.approx(0.2)

    def test_named_scale_resolution(self):
        assert micro_config(scale="tiny").scale_preset().name == "tiny"


class TestFaultFreeMode:
    def test_measures_response_times(self):
        result = run_scenario(micro_config(mode="fault-free"))
        assert result.response.count > 100
        assert 0 < result.response.mean_ms < 500
        assert result.reconstruction is None

    def test_read_write_split(self):
        result = run_scenario(micro_config(mode="fault-free"))
        assert result.read_response.count + result.write_response.count == (
            result.response.count
        )
        # Writes cost four accesses; they must be slower than reads.
        assert result.write_response.mean_ms > result.read_response.mean_ms

    def test_utilization_sane(self):
        result = run_scenario(micro_config(mode="fault-free"))
        assert len(result.disk_utilization) == 21
        assert all(0 <= u < 1 for u in result.disk_utilization)


class TestDegradedMode:
    def test_degraded_is_slower_for_reads(self):
        fault_free = run_scenario(micro_config(mode="fault-free", read_fraction=1.0))
        degraded = run_scenario(micro_config(mode="degraded", read_fraction=1.0))
        assert degraded.response.mean_ms > fault_free.response.mean_ms


class TestReconMode:
    def test_reconstruction_completes_and_reports(self):
        result = run_scenario(
            micro_config(mode="recon", algorithm=USER_WRITES, recon_workers=4)
        )
        assert result.reconstruction is not None
        assert result.reconstruction_time_s > 0
        assert result.normalized_recon_ms_per_unit > 0
        recon = result.reconstruction
        assert recon.swept_units + recon.user_built_units == recon.total_units

    def test_datastore_scenario_is_clean(self):
        result = run_scenario(
            micro_config(
                mode="recon",
                algorithm=REDIRECT,
                recon_workers=4,
                with_datastore=True,
            )
        )
        assert result.integrity_errors == []

    def test_recon_time_accessors_raise_without_reconstruction(self):
        result = run_scenario(micro_config(mode="fault-free"))
        with pytest.raises(RuntimeError):
            _ = result.reconstruction_time_s


class TestDeterminism:
    def test_same_config_same_result(self):
        first = run_scenario(micro_config(mode="fault-free"))
        second = run_scenario(micro_config(mode="fault-free"))
        assert first.response.mean_ms == second.response.mean_ms
        assert first.requests_completed == second.requests_completed


class TestMeasurementWindow:
    """Utilization must be computed over [warmup, end], not [0, end]."""

    def test_warmup_changes_utilization_but_not_the_simulation(self):
        no_warmup = ScalePreset(
            name="micro-w0",
            cylinders=13,
            steady_duration_ms=3_000.0,
            warmup_ms=0.0,
            note="test-only",
        )
        warm = run_scenario(micro_config(mode="fault-free"))
        cold = run_scenario(micro_config(mode="fault-free", scale=no_warmup))
        # Warm-up is a measurement boundary, not a simulation phase:
        # the event streams are identical, so raw busy totals agree...
        assert warm.requests_completed == cold.requests_completed
        # ...but the utilizations must differ, because the warm run
        # divides post-warmup busy time by the 2.5 s window while the
        # cold run divides the whole-run busy time by 3 s. (The old
        # code ignored the warmup boundary, making these equal.)
        assert warm.disk_utilization != cold.disk_utilization
        assert all(0 <= u < 1 for u in warm.disk_utilization)
        assert all(0 <= u < 1 for u in cold.disk_utilization)

    def test_zero_length_window_reports_zero_not_crash(self):
        degenerate = ScalePreset(
            name="micro-degenerate",
            cylinders=13,
            steady_duration_ms=1_000.0,
            warmup_ms=1_000.0,  # window [1000, 1000] is empty
            note="test-only",
        )
        result = run_scenario(micro_config(mode="fault-free", scale=degenerate))
        assert result.disk_utilization == [0.0] * 21
        assert result.metrics["window_ms"] == 0.0


class TestMetricsBlock:
    def test_recon_run_reports_all_latency_classes_and_progress(self):
        result = run_scenario(
            micro_config(mode="recon", algorithm=USER_WRITES, recon_workers=4)
        )
        metrics = result.metrics
        assert metrics is not None
        for klass in ("user-read", "user-write", "recon-read", "recon-write"):
            assert metrics["latency_ms"][klass]["count"] > 0
        assert len(metrics["disks"]) == 21
        for row in metrics["disks"]:
            assert 0.0 <= row["utilization"] <= 1.0
            assert "queue_depth_mean" in row
        (series,) = metrics["recon_progress"]
        assert series["points"][-1][1] == series["total_units"]
        assert metrics["counters"]["requests-completed"] > 0

    def test_metrics_match_response_summary_window(self):
        result = run_scenario(micro_config(mode="fault-free", read_fraction=1.0))
        # Same warmup filter on both paths: histogram sample count
        # equals the recorder's post-warmup count.
        assert result.metrics["latency_ms"]["user-read"]["count"] == (
            result.response.count
        )

    def test_collect_metrics_off_is_bit_identical(self):
        from repro.sweep import result_to_dict

        config = micro_config(mode="fault-free")
        with_metrics = result_to_dict(run_scenario(config))
        without = result_to_dict(run_scenario(config, collect_metrics=False))
        assert without["metrics"] is None
        assert with_metrics["metrics"] is not None
        # Observability is passive: stripping the metrics block leaves
        # the two result documents equal, so cache entries written by
        # either mode agree on everything the figures consume.
        with_metrics["metrics"] = None
        assert with_metrics == without

    def test_collect_metrics_is_not_part_of_the_cache_key(self):
        key = micro_config(mode="fault-free").to_key()
        assert "metrics" not in key
        assert "collect_metrics" not in key


class TestConfigKey:
    def test_round_trip_with_named_scale(self):
        config = micro_config(scale="tiny", algorithm=REDIRECT, mode="recon")
        assert ScenarioConfig.from_key(config.to_key()) == config

    def test_round_trip_with_scale_preset(self):
        config = micro_config(algorithm=USER_WRITES, recon_workers=8)
        rebuilt = ScenarioConfig.from_key(config.to_key())
        assert rebuilt == config
        assert isinstance(rebuilt.scale, ScalePreset)

    def test_key_is_json_safe(self):
        import json

        config = micro_config(algorithm=REDIRECT)
        restored = json.loads(json.dumps(config.to_key(), sort_keys=True))
        assert ScenarioConfig.from_key(restored) == config

    def test_algorithm_stored_by_name(self):
        assert micro_config(algorithm=REDIRECT).to_key()["algorithm"] == "redirect"

    def test_strict_baseline_round_trips(self):
        from repro.recon.algorithms import STRICT_BASELINE

        config = micro_config(algorithm=STRICT_BASELINE)
        assert ScenarioConfig.from_key(config.to_key()).algorithm is STRICT_BASELINE


class TestSyndromesConfig:
    def test_default_is_single_parity(self):
        config = micro_config()
        assert config.syndromes == 1
        assert config.to_key()["syndromes"] == 1

    def test_dual_round_trips_through_key(self):
        config = micro_config(syndromes=2)
        assert ScenarioConfig.from_key(config.to_key()) == config

    def test_legacy_key_without_syndromes_defaults_to_single(self):
        # Cache keys written before the dual campaign existed must
        # rebuild, not KeyError.
        key = micro_config().to_key()
        key.pop("syndromes")
        assert ScenarioConfig.from_key(key).syndromes == 1

    def test_invalid_syndrome_counts_rejected(self):
        with pytest.raises(ValueError, match="syndromes"):
            micro_config(syndromes=3)
        with pytest.raises(ValueError, match="syndromes"):
            micro_config(stripe_size=2, syndromes=2)
