"""Scenario runner integration tests (micro-sized arrays)."""

import pytest

from repro.experiments import ScenarioConfig, run_scenario
from repro.experiments.scales import ScalePreset
from repro.recon import REDIRECT, USER_WRITES

#: A sub-tiny preset so each runner test stays under a second.
MICRO = ScalePreset(
    name="micro",
    cylinders=13,
    steady_duration_ms=3_000.0,
    warmup_ms=500.0,
    note="test-only",
)


def micro_config(**overrides):
    base = dict(
        stripe_size=4,
        user_rate_per_s=105.0,
        read_fraction=0.5,
        scale=MICRO,
        seed=7,
    )
    base.update(overrides)
    return ScenarioConfig(**base)


class TestConfigValidation:
    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            micro_config(mode="exploded")

    def test_bad_workers_rejected(self):
        with pytest.raises(ValueError):
            micro_config(mode="recon", recon_workers=0)

    def test_alpha(self):
        assert micro_config(stripe_size=5).alpha == pytest.approx(0.2)

    def test_named_scale_resolution(self):
        assert micro_config(scale="tiny").scale_preset().name == "tiny"


class TestFaultFreeMode:
    def test_measures_response_times(self):
        result = run_scenario(micro_config(mode="fault-free"))
        assert result.response.count > 100
        assert 0 < result.response.mean_ms < 500
        assert result.reconstruction is None

    def test_read_write_split(self):
        result = run_scenario(micro_config(mode="fault-free"))
        assert result.read_response.count + result.write_response.count == (
            result.response.count
        )
        # Writes cost four accesses; they must be slower than reads.
        assert result.write_response.mean_ms > result.read_response.mean_ms

    def test_utilization_sane(self):
        result = run_scenario(micro_config(mode="fault-free"))
        assert len(result.disk_utilization) == 21
        assert all(0 <= u < 1 for u in result.disk_utilization)


class TestDegradedMode:
    def test_degraded_is_slower_for_reads(self):
        fault_free = run_scenario(micro_config(mode="fault-free", read_fraction=1.0))
        degraded = run_scenario(micro_config(mode="degraded", read_fraction=1.0))
        assert degraded.response.mean_ms > fault_free.response.mean_ms


class TestReconMode:
    def test_reconstruction_completes_and_reports(self):
        result = run_scenario(
            micro_config(mode="recon", algorithm=USER_WRITES, recon_workers=4)
        )
        assert result.reconstruction is not None
        assert result.reconstruction_time_s > 0
        assert result.normalized_recon_ms_per_unit > 0
        recon = result.reconstruction
        assert recon.swept_units + recon.user_built_units == recon.total_units

    def test_datastore_scenario_is_clean(self):
        result = run_scenario(
            micro_config(
                mode="recon",
                algorithm=REDIRECT,
                recon_workers=4,
                with_datastore=True,
            )
        )
        assert result.integrity_errors == []

    def test_recon_time_accessors_raise_without_reconstruction(self):
        result = run_scenario(micro_config(mode="fault-free"))
        with pytest.raises(RuntimeError):
            _ = result.reconstruction_time_s


class TestDeterminism:
    def test_same_config_same_result(self):
        first = run_scenario(micro_config(mode="fault-free"))
        second = run_scenario(micro_config(mode="fault-free"))
        assert first.response.mean_ms == second.response.mean_ms
        assert first.requests_completed == second.requests_completed


class TestConfigKey:
    def test_round_trip_with_named_scale(self):
        config = micro_config(scale="tiny", algorithm=REDIRECT, mode="recon")
        assert ScenarioConfig.from_key(config.to_key()) == config

    def test_round_trip_with_scale_preset(self):
        config = micro_config(algorithm=USER_WRITES, recon_workers=8)
        rebuilt = ScenarioConfig.from_key(config.to_key())
        assert rebuilt == config
        assert isinstance(rebuilt.scale, ScalePreset)

    def test_key_is_json_safe(self):
        import json

        config = micro_config(algorithm=REDIRECT)
        restored = json.loads(json.dumps(config.to_key(), sort_keys=True))
        assert ScenarioConfig.from_key(restored) == config

    def test_algorithm_stored_by_name(self):
        assert micro_config(algorithm=REDIRECT).to_key()["algorithm"] == "redirect"

    def test_strict_baseline_round_trips(self):
        from repro.recon.algorithms import STRICT_BASELINE

        config = micro_config(algorithm=STRICT_BASELINE)
        assert ScenarioConfig.from_key(config.to_key()).algorithm is STRICT_BASELINE
