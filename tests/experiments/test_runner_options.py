"""Runner options: ablation and extension switches pass through."""

from repro.experiments import ScenarioConfig, run_scenario
from repro.experiments.scales import ScalePreset

MICRO = ScalePreset(
    name="micro", cylinders=13, steady_duration_ms=2_000.0, warmup_ms=300.0,
    note="test-only",
)


def micro_config(**overrides):
    base = dict(
        stripe_size=4, user_rate_per_s=105.0, read_fraction=0.5,
        scale=MICRO, seed=7,
    )
    base.update(overrides)
    return ScenarioConfig(**base)


class TestConstantRateDisks:
    def test_flag_changes_results(self):
        real = run_scenario(micro_config(mode="fault-free"))
        flat = run_scenario(micro_config(mode="fault-free", constant_rate_disks=True))
        assert flat.response.mean_ms != real.response.mean_ms

    def test_constant_world_has_uniform_service(self):
        result = run_scenario(
            micro_config(mode="fault-free", constant_rate_disks=True,
                         read_fraction=1.0)
        )
        # Reads are one access; with fixed service and light load, mean
        # response sits near the 1000/46 ms service time.
        assert 1000.0 / 46.0 <= result.response.mean_ms < 3 * 1000.0 / 46.0


class TestReconThrottleOption:
    def test_throttle_extends_reconstruction(self):
        plain = run_scenario(micro_config(mode="recon", recon_workers=8))
        throttled = run_scenario(
            micro_config(mode="recon", recon_workers=8, recon_cycle_delay_ms=50.0)
        )
        assert throttled.reconstruction_time_s > plain.reconstruction_time_s


class TestPolicyOption:
    def test_priority_policy_accepted(self):
        from repro.recon import USER_WRITES

        result = run_scenario(
            micro_config(mode="recon", recon_workers=8, policy="cvscan+priority",
                         algorithm=USER_WRITES)
        )
        assert result.reconstruction_time_s > 0

    def test_fifo_policy_is_slower(self):
        cvscan = run_scenario(micro_config(mode="fault-free", user_rate_per_s=300.0))
        fifo = run_scenario(
            micro_config(mode="fault-free", user_rate_per_s=300.0, policy="fifo")
        )
        assert fifo.response.mean_ms > cvscan.response.mean_ms
