"""Tests for the saturation sweep experiment."""

import pytest

from repro.experiments import saturation
from repro.experiments.scales import ScalePreset

MICRO = ScalePreset(
    name="micro", cylinders=13, steady_duration_ms=2_000.0, warmup_ms=300.0,
    note="test-only",
)


class TestAnalyticCeiling:
    def test_pure_reads(self):
        # 21 disks * 46/s, expansion factor 1.
        assert saturation.analytic_user_rate_ceiling(1.0) == pytest.approx(966.0)

    def test_pure_writes(self):
        # Expansion factor 4.
        assert saturation.analytic_user_rate_ceiling(0.0) == pytest.approx(241.5)

    def test_paper_unsustainable_case(self):
        # Section 6: 378 writes/s "would be 72 4 KB accesses per second
        # per disk" — beyond the 46/s ceiling.
        assert 378.0 > saturation.analytic_user_rate_ceiling(0.0)


class TestSweep:
    def test_rows_and_monotonicity(self):
        rows = saturation.run(scale=MICRO, rates=(100.0, 300.0))
        assert len(rows) == 2
        assert rows[1]["mean_response_ms"] > rows[0]["mean_response_ms"]

    def test_formatting(self):
        rows = saturation.run(scale=MICRO, rates=(100.0,))
        text = saturation.format_rows(rows)
        assert "ceiling" in text
        assert "100.0" in text
