"""Unit tests for scale presets."""

import pytest

from repro.disk import IBM_0661
from repro.experiments import SCALES, get_scale


class TestScales:
    def test_three_presets(self):
        assert set(SCALES) == {"tiny", "small", "paper"}

    def test_paper_scale_is_the_real_drive(self):
        assert get_scale("paper").spec() is IBM_0661

    def test_paper_scale_unit_count(self):
        # 949 * 14 * 48 / 8 = 79,716 four-KB units per disk.
        assert get_scale("paper").units_per_disk == 79_716

    def test_tiny_scale_fits_every_paper_layout(self):
        # The deepest table in the experiment grid (alpha = 0.85
        # complement design) is 1,080 units; tiny must hold it.
        assert get_scale("tiny").units_per_disk >= 1_080

    def test_scaled_specs_share_track_geometry(self):
        for name in SCALES:
            spec = get_scale(name).spec()
            assert spec.sectors_per_track == IBM_0661.sectors_per_track
            assert spec.tracks_per_cylinder == IBM_0661.tracks_per_cylinder
            assert spec.seek_avg_ms == IBM_0661.seek_avg_ms

    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError, match="unknown scale"):
            get_scale("galactic")

    def test_ordering(self):
        assert (
            get_scale("tiny").units_per_disk
            < get_scale("small").units_per_disk
            < get_scale("paper").units_per_disk
        )
