"""Integration tests for the stochastic fault injector."""

import pytest

from repro.array.sparing import SparePool
from repro.faults.injector import FaultInjector
from repro.faults.log import DATA_LOSS, LATENT_ERROR, REPAIR_COMPLETE
from repro.faults.profile import FaultProfile
from tests.conftest import build_array

# An accelerated clock: 1000 ms mean disk lifetime, so a 5-disk array
# sees its first failure after a couple hundred simulated ms.
FAST_MTTF_HOURS = 1000.0 / 3_600_000.0


def build_faulty_array(**profile_kwargs):
    profile = FaultProfile(seed=11, **profile_kwargs)
    return build_array(cylinders=3, fault_profile=profile)


class TestConstruction:
    def test_requires_a_fault_profile(self, small_array):
        with pytest.raises(ValueError, match="FaultProfile"):
            FaultInjector(small_array.controller)

    def test_double_start_rejected(self):
        array = build_faulty_array(disk_mttf_hours=FAST_MTTF_HOURS)
        injector = FaultInjector(array.controller).start()
        with pytest.raises(RuntimeError, match="already started"):
            injector.start()

    def test_installs_escalation_callback(self):
        array = build_faulty_array()
        injector = FaultInjector(array.controller)
        assert array.controller.on_disk_failure == injector.inject_disk_failure


class TestLifetimeClocks:
    def test_unattended_array_loses_data(self):
        # No spare pool: the first failure degrades the array, the
        # second loses data — gracefully, terminating the campaign.
        array = build_faulty_array(disk_mttf_hours=FAST_MTTF_HOURS)
        injector = FaultInjector(array.controller).start()
        array.env.run(until=injector.data_loss_event)
        faults = array.controller.faults
        assert injector.data_lost
        assert faults.data_lost
        assert faults.failed_disk is not None
        assert len(faults.lost_disks) == 1
        assert injector.disk_failures == 2
        assert array.controller.fault_log.count(DATA_LOSS) == 1
        assert injector.data_loss_event.value == array.env.now

    def test_spare_pool_repairs_keep_the_array_alive(self):
        array = build_faulty_array(disk_mttf_hours=FAST_MTTF_HOURS)
        pool = SparePool(array.controller, spares=64, replacement_delay_ms=0.0)
        injector = FaultInjector(array.controller, monitor=pool).start()
        horizon = array.env.timeout(20_000.0)
        array.env.run(until=array.env.any_of([horizon, injector.data_loss_event]))
        assert injector.disk_failures >= 2
        assert injector.repairs_completed >= 1
        assert array.controller.fault_log.count(REPAIR_COMPLETE) == (
            injector.repairs_completed
        )
        # Every routed failure consumed a spare (completed repairs and
        # any repair still in flight when the horizon fired).
        assert pool.spares_remaining < 64
        assert pool.spares_remaining <= 64 - len(pool.repairs)

    def test_repairs_completed_matches_records_at_every_step(self):
        # mean_repair_ms (averaged over pool.repairs) and
        # injector.repairs_completed must describe the same set of
        # repairs no matter when the campaign stops. The synchronous
        # SparePool.on_repair callback keeps them in lockstep; the old
        # event-listener tracker lagged one heap step behind the record
        # append, so a mission ending on a completion tick undercounted.
        array = build_faulty_array(disk_mttf_hours=FAST_MTTF_HOURS)
        pool = SparePool(array.controller, spares=64, replacement_delay_ms=0.0)
        injector = FaultInjector(array.controller, monitor=pool).start()
        while array.env.peek() <= 20_000.0 and not injector.data_lost:
            array.env.step()
            assert injector.repairs_completed == len(pool.repairs)
        assert injector.repairs_completed >= 1

    def test_failure_on_dead_disk_is_a_no_op(self):
        array = build_faulty_array()
        injector = FaultInjector(array.controller)
        array.controller.fail_disk(2)
        before = injector.disk_failures
        injector.inject_disk_failure(2)
        assert injector.disk_failures == before
        assert array.controller.faults.failed_disk == 2


class TestLatentArrivals:
    def test_arrivals_plant_latent_state(self):
        # 3600 errors/disk-hour = one per simulated second per disk.
        array = build_faulty_array(latent_errors_per_hour=3600.0)
        injector = FaultInjector(array.controller).start()
        array.env.run(until=array.env.timeout(3_000.0))
        planted = array.controller.fault_log.count(LATENT_ERROR)
        assert planted >= 1
        extents = sum(
            disk.fault_state.latent_extents for disk in array.controller.disks
        )
        assert 1 <= extents <= planted
        assert not injector.data_lost
