"""Degraded-mode I/O during rebuild with latent sector errors.

Satellite contract for the robustness PR: a latent (unreadable) sector
discovered *while a rebuild is running* behaves per the array's fault
tolerance. A single-parity sweep that hits a latent peer has no
redundancy left and must surrender exactly that stripe — loudly. A
dual-syndrome sweep decodes through the latent peer via the surviving
syndrome, and rewrites the latent unit in place so repeated sweeps
don't grind the disk's hard-error budget down. User I/O racing either
repair must stay bit-exact throughout.
"""

from repro.array.datastore import initial_data_pattern
from repro.faults.log import FOREGROUND_REPAIR, REBUILD_LOST
from repro.faults.profile import FaultProfile
from repro.recon import Reconstructor
from repro.workload import SyntheticWorkload, WorkloadConfig
from tests.array.test_scrubber import plant_latent
from tests.conftest import build_array, build_dual_array
from tests.recon.test_dual_recon import disk_is_bit_exact

QUIESCENT = FaultProfile(seed=3)  # fault paths armed, no stochastic sources


def stripe_with_peer(array, failed):
    """(stripe, peer unit) — a stripe on ``failed`` plus one live peer."""
    layout = array.layout
    for stripe in range(array.addressing.num_stripes):
        units = layout.stripe_units(stripe)
        if any(unit.disk == failed for unit in units):
            peer = next(unit for unit in units if unit.disk != failed)
            return stripe, peer
    raise AssertionError(f"no stripe touches disk {failed}")


def rebuild(array, disk, workers=2):
    controller = array.controller
    controller.install_replacement(disk)
    reconstructor = Reconstructor(controller, workers=workers, disk=disk)
    array.env.run(until=reconstructor.start())
    return reconstructor


class TestSingleParitySurrenders:
    def test_latent_peer_costs_the_sweep_exactly_that_stripe(self):
        array = build_array(fault_profile=QUIESCENT)
        failed = 1
        stripe, peer = stripe_with_peer(array, failed)
        state = plant_latent(array, peer)
        array.controller.fail_disk(failed)
        reconstructor = rebuild(array, failed)
        # One stripe had a latent peer: with parity already spent on
        # the failed disk there is nothing left to XOR from, so the
        # sweep surrenders that unit — and only that unit.
        assert reconstructor.lost_units == 1
        [lost] = array.controller.fault_log.of_kind(REBUILD_LOST)
        assert lost.stripe == stripe
        # The surrender is not a repair: the latent extent remains.
        assert state.latent_extents == 1

    def test_stripes_without_the_latent_peer_rebuild_bit_exactly(self):
        array = build_array(fault_profile=QUIESCENT)
        failed = 1
        stripe, peer = stripe_with_peer(array, failed)
        plant_latent(array, peer)
        array.controller.fail_disk(failed)
        rebuild(array, failed)
        layout = array.layout
        store = array.controller.datastore
        for offset in range(array.addressing.mapped_units_per_disk):
            unit_stripe, role = layout.stripe_of(failed, offset)
            if unit_stripe == stripe:
                continue  # the surrendered unit
            if role >= 0:
                expected = initial_data_pattern(failed, offset)
                assert store.read_unit(failed, offset) == expected


class TestDualSweepDecodesAndRepairs:
    def test_latent_peer_is_decoded_through_and_rewritten(self):
        array = build_dual_array(fault_profile=QUIESCENT)
        failed = 2
        stripe, peer = stripe_with_peer(array, failed)
        state = plant_latent(array, peer)
        array.controller.fail_disk(failed)
        reconstructor = rebuild(array, failed)
        # The surviving syndrome absorbs the latent erasure: nothing
        # surrendered, the rebuilt disk is bit-exact...
        assert reconstructor.lost_units == 0
        assert array.controller.fault_log.count(REBUILD_LOST) == 0
        assert disk_is_bit_exact(array, failed)
        # ...and the latent unit itself was rewritten in place, so the
        # next sweep will not re-hit it.
        assert state.latent_extents == 0
        repairs = [
            e
            for e in array.controller.fault_log.of_kind(FOREGROUND_REPAIR)
            if e.disk == peer.disk and e.offset == peer.offset
        ]
        assert len(repairs) == 1
        assert repairs[0].detail == "rebuilt by recon sweep decode"
        store = array.controller.datastore
        assert all(
            store.stripe_is_consistent(s)
            for s in range(array.addressing.num_stripes)
        )

    def test_degraded_read_during_rebuild_decodes_past_the_latent(self):
        array = build_dual_array(fault_profile=QUIESCENT)
        controller = array.controller
        failed = 1
        controller.fail_disk(failed)
        controller.install_replacement(failed)
        # A logical unit on the failed disk whose stripe also has a
        # latent peer: the on-the-fly decode sees two erasures.
        layout = array.layout
        target = None
        for logical in range(array.addressing.num_data_units):
            address = array.addressing.logical_unit_address(logical)
            if address.disk != failed:
                continue
            stripe = layout.stripe_of_logical(logical)
            peer = next(
                unit
                for unit in layout.stripe_units(stripe)
                if unit.disk != failed
            )
            target = (logical, address, peer)
            break
        assert target is not None
        logical, address, peer = target
        plant_latent(array, peer)
        request = array.run_op(controller.read(logical))
        assert not request.lost_units
        assert request.read_values == [
            initial_data_pattern(address.disk, address.offset)
        ]
        assert "double-degraded-read" in request.paths


class TestForegroundRepairVersusSweepRace:
    def test_user_io_and_sweep_race_over_latent_sectors(self):
        """Concurrent user I/O, a running dual rebuild, and several
        latent sectors: foreground repairs and sweep decodes contend
        for the same stripes and every read must stay bit-exact."""
        array = build_dual_array(fault_profile=FaultProfile(seed=5))
        controller = array.controller
        failed = 2
        planted = 0
        for stripe in range(0, array.addressing.num_stripes, 7):
            units = [
                unit
                for unit in array.layout.stripe_units(stripe)
                if unit.disk != failed
            ]
            plant_latent(array, units[stripe % len(units)])
            planted += 1
            if planted == 3:
                break
        controller.fail_disk(failed)
        controller.install_replacement(failed)
        workload = SyntheticWorkload(
            controller,
            WorkloadConfig(access_rate_per_s=40, read_fraction=0.5),
        )
        workload.run(duration_ms=float("inf"))
        reconstructor = Reconstructor(controller, workers=4, disk=failed)
        array.env.run(until=reconstructor.start())
        workload.stop()
        array.env.run(until=workload.drained())
        assert workload.integrity_errors == []
        assert reconstructor.lost_units == 0
        assert controller.faults.fault_free
        store = controller.datastore
        assert all(
            store.stripe_is_consistent(s)
            for s in range(array.addressing.num_stripes)
        )
