"""Unit tests for the fault flight recorder."""

from repro.faults.log import DISK_FAILURE, LATENT_ERROR, RETRY, FaultLog


class TestFaultLog:
    def test_starts_empty(self):
        log = FaultLog()
        assert len(log) == 0
        assert log.count(DISK_FAILURE) == 0
        assert log.of_kind(DISK_FAILURE) == []
        assert log.summary() == {}

    def test_record_returns_the_event(self):
        log = FaultLog()
        event = log.record(LATENT_ERROR, 12.5, disk=3, offset=7, detail="planted")
        assert event.kind == LATENT_ERROR
        assert event.at_ms == 12.5
        assert event.disk == 3
        assert event.offset == 7
        assert event.detail == "planted"
        assert log.events == [event]

    def test_counts_by_kind(self):
        log = FaultLog()
        log.record(RETRY, 1.0, disk=0)
        log.record(RETRY, 2.0, disk=1)
        log.record(DISK_FAILURE, 3.0, disk=1)
        assert log.count(RETRY) == 2
        assert log.count(DISK_FAILURE) == 1
        assert len(log) == 3

    def test_of_kind_preserves_order(self):
        log = FaultLog()
        first = log.record(RETRY, 1.0, disk=0)
        log.record(DISK_FAILURE, 2.0, disk=0)
        second = log.record(RETRY, 3.0, disk=0)
        assert log.of_kind(RETRY) == [first, second]

    def test_summary_is_a_copy(self):
        log = FaultLog()
        log.record(RETRY, 1.0)
        summary = log.summary()
        summary[RETRY] = 99
        assert log.count(RETRY) == 1
