"""Unit tests for the fault profile value object."""

import dataclasses
import json
import random

import pytest

from repro.faults.profile import MS_PER_HOUR, FaultProfile


class TestValidation:
    def test_negative_mttf_rejected(self):
        with pytest.raises(ValueError, match="MTTF cannot be negative"):
            FaultProfile(disk_mttf_hours=-1.0)

    def test_nonpositive_shape_rejected(self):
        with pytest.raises(ValueError, match="shape must be positive"):
            FaultProfile(lifetime_shape=0.0)

    def test_negative_latent_rate_rejected(self):
        with pytest.raises(ValueError, match="latent error rate"):
            FaultProfile(latent_errors_per_hour=-0.1)

    def test_transient_probability_bounds(self):
        with pytest.raises(ValueError, match="transient error probability"):
            FaultProfile(transient_error_prob=1.5)
        with pytest.raises(ValueError, match="transient error probability"):
            FaultProfile(transient_error_prob=-0.01)

    def test_negative_penalty_rejected(self):
        with pytest.raises(ValueError, match="penalty cannot be negative"):
            FaultProfile(transient_penalty_ms=-1.0)

    def test_escalation_threshold_floor(self):
        with pytest.raises(ValueError, match="escalation threshold"):
            FaultProfile(escalation_threshold=0)


class TestEnablement:
    def test_default_profile_is_quiescent(self):
        assert not FaultProfile().enabled

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(disk_mttf_hours=100.0),
            dict(latent_errors_per_hour=0.01),
            dict(transient_error_prob=1e-6),
        ],
    )
    def test_any_rate_enables(self, kwargs):
        assert FaultProfile(**kwargs).enabled


class TestDerivedQuantities:
    def test_mttf_unit_conversion(self):
        assert FaultProfile(disk_mttf_hours=2.0).disk_mttf_ms == 2.0 * MS_PER_HOUR

    def test_latent_interarrival_disabled(self):
        assert FaultProfile().latent_interarrival_ms is None

    def test_latent_interarrival_is_rate_inverse(self):
        profile = FaultProfile(latent_errors_per_hour=4.0)
        assert profile.latent_interarrival_ms == MS_PER_HOUR / 4.0

    def test_lifetime_draw_requires_positive_mttf(self):
        with pytest.raises(ValueError, match="positive disk MTTF"):
            FaultProfile().draw_lifetime_ms(random.Random(1))

    @pytest.mark.parametrize("shape", [1.0, 0.7, 2.0])
    def test_lifetime_mean_matches_mttf_for_any_shape(self, shape):
        profile = FaultProfile(disk_mttf_hours=1.0, lifetime_shape=shape)
        rng = random.Random(42)
        draws = [profile.draw_lifetime_ms(rng) for _ in range(4000)]
        mean = sum(draws) / len(draws)
        assert mean == pytest.approx(profile.disk_mttf_ms, rel=0.1)


class TestSerialization:
    def test_json_round_trip(self):
        profile = FaultProfile(
            disk_mttf_hours=1.5,
            lifetime_shape=1.2,
            latent_errors_per_hour=0.25,
            transient_error_prob=0.001,
            seed=7,
        )
        document = json.loads(json.dumps(dataclasses.asdict(profile)))
        assert FaultProfile(**document) == profile
