"""Unit tests for the retry/backoff policy."""

import pytest

from repro.faults.retry import RetryPolicy
from repro.faults.state import ERROR_MEDIA, ERROR_TIMEOUT


class TestValidation:
    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)

    def test_negative_base_delay_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(base_delay_ms=-0.1)

    def test_shrinking_backoff_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)

    def test_cap_below_base_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(base_delay_ms=10.0, max_delay_ms=5.0)

    def test_negative_attempt_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy().delay_ms(-1)


class TestBackoff:
    def test_delays_grow_exponentially(self):
        policy = RetryPolicy(base_delay_ms=0.5, backoff_factor=2.0, max_delay_ms=50.0)
        assert [policy.delay_ms(n) for n in range(4)] == [0.5, 1.0, 2.0, 4.0]

    def test_delay_is_capped(self):
        policy = RetryPolicy(base_delay_ms=1.0, backoff_factor=10.0, max_delay_ms=25.0)
        assert policy.delay_ms(0) == 1.0
        assert policy.delay_ms(1) == 10.0
        assert policy.delay_ms(2) == 25.0
        assert policy.delay_ms(9) == 25.0


class TestShouldRetry:
    def test_timeouts_retry_up_to_the_bound(self):
        policy = RetryPolicy(max_retries=2)
        assert policy.should_retry(ERROR_TIMEOUT, 0)
        assert policy.should_retry(ERROR_TIMEOUT, 1)
        assert not policy.should_retry(ERROR_TIMEOUT, 2)

    def test_media_errors_not_retried_by_default(self):
        assert not RetryPolicy().should_retry(ERROR_MEDIA, 0)

    def test_media_retry_opt_in_is_still_bounded(self):
        policy = RetryPolicy(max_retries=1, retry_media=True)
        assert policy.should_retry(ERROR_MEDIA, 0)
        assert not policy.should_retry(ERROR_MEDIA, 1)

    def test_zero_retries_means_one_attempt(self):
        assert not RetryPolicy(max_retries=0).should_retry(ERROR_TIMEOUT, 0)
