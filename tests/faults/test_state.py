"""Unit tests for the per-disk fault state machine."""

import random

import pytest

from repro.faults.profile import FaultProfile
from repro.faults.state import ERROR_MEDIA, ERROR_TIMEOUT, DiskFaultState


class ExplodingRandom(random.Random):
    """An RNG that fails the test if anything draws from it."""

    def random(self):  # pragma: no cover - only hit on regression
        raise AssertionError("quiescent fault state drew from its RNG")


def make_state(profile=None, rng=None):
    return DiskFaultState(
        profile if profile is not None else FaultProfile(),
        rng if rng is not None else random.Random(5),
    )


class TestLatentExtents:
    def test_add_and_overlap(self):
        state = make_state()
        state.add_latent(100, 8)
        assert state.latent_extents == 1
        assert state.has_latent_overlap(96, 8)       # tail overlaps head
        assert state.has_latent_overlap(104, 8)      # head overlaps tail
        assert not state.has_latent_overlap(88, 8)   # ends exactly at start
        assert not state.has_latent_overlap(108, 8)  # begins exactly at end

    def test_add_merges_by_max(self):
        state = make_state()
        state.add_latent(50, 4)
        state.add_latent(50, 2)
        assert state.latent == {50: 4}
        state.add_latent(50, 8)
        assert state.latent == {50: 8}

    def test_empty_extent_rejected(self):
        with pytest.raises(ValueError):
            make_state().add_latent(0, 0)

    def test_clear_overlap_drops_covered_extents(self):
        state = make_state()
        state.add_latent(10, 4)
        state.add_latent(100, 4)
        assert state.clear_latent_overlap(8, 8) == 1
        assert state.latent == {100: 4}


class TestOutcomes:
    def test_clean_state_is_clean(self):
        assert make_state().outcome_for(0, 8, is_write=False) == (None, 0.0)

    def test_read_over_latent_is_a_media_error(self):
        state = make_state()
        state.add_latent(64, 8)
        assert state.outcome_for(64, 8, is_write=False) == (ERROR_MEDIA, 0.0)
        assert state.media_faults == 1

    def test_write_remaps_latent_sectors(self):
        state = make_state()
        state.add_latent(64, 8)
        assert state.outcome_for(64, 8, is_write=True) == (None, 0.0)
        assert state.latent_extents == 0
        # The remapped sectors now read cleanly.
        assert state.outcome_for(64, 8, is_write=False) == (None, 0.0)

    def test_certain_transient_fault_with_penalty(self):
        profile = FaultProfile(transient_error_prob=1.0, transient_penalty_ms=7.5)
        state = make_state(profile)
        assert state.outcome_for(0, 8, is_write=False) == (ERROR_TIMEOUT, 7.5)
        assert state.transient_faults == 1

    def test_write_remap_happens_even_under_transient_fault(self):
        # The media was written before the completion was lost.
        profile = FaultProfile(transient_error_prob=1.0)
        state = make_state(profile)
        state.add_latent(64, 8)
        error, _penalty = state.outcome_for(64, 8, is_write=True)
        assert error == ERROR_TIMEOUT
        assert state.latent_extents == 0

    def test_quiescent_state_never_draws(self):
        state = make_state(FaultProfile(), ExplodingRandom())
        for _ in range(10):
            assert state.outcome_for(0, 8, is_write=False) == (None, 0.0)
            assert state.outcome_for(0, 8, is_write=True) == (None, 0.0)
