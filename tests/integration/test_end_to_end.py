"""End-to-end: fault-free service → failure → degraded service →
replacement → reconstruction under load → verified recovery.

This is the paper's continuous-operation story, executed with real data
contents and verified bit-exactly for each of the four reconstruction
algorithms and for RAID 5 as well as declustered layouts.
"""

import pytest

from repro.layout.base import PARITY_ROLE
from repro.recon import ALGORITHMS, Reconstructor
from repro.workload import SyntheticWorkload, WorkloadConfig
from tests.conftest import build_array

FAILED_DISK = 2


def continuous_operation_story(array, algorithm_workers=4, rate=60.0, seed=13):
    """Run the full lifecycle; returns (workload, reconstructor)."""
    env = array.env
    controller = array.controller
    workload = SyntheticWorkload(
        controller,
        WorkloadConfig(access_rate_per_s=rate, read_fraction=0.5, seed=seed),
    )
    workload.run(duration_ms=float("inf"))
    env.run(until=1_000.0)              # fault-free service
    workload.pause_verification()
    controller.fail_disk(FAILED_DISK)
    env.run(until=2_500.0)              # degraded service
    controller.install_replacement()
    reconstructor = Reconstructor(controller, workers=algorithm_workers)
    done = reconstructor.start()
    env.run(until=done)                 # recovery under load
    env.run(until=env.now + 2_000.0)    # post-repair service
    workload.stop()
    env.run(until=workload.drained())
    return workload, reconstructor


def assert_array_fully_recovered(array):
    """All stripes consistent; the rebuilt disk agrees with its peers."""
    controller = array.controller
    store = controller.datastore
    layout = array.layout
    assert controller.faults.fault_free
    for stripe in range(array.addressing.num_stripes):
        assert store.stripe_is_consistent(stripe), f"stripe {stripe}"
    for offset in range(array.addressing.mapped_units_per_disk):
        stripe, _role = layout.stripe_of(FAILED_DISK, offset)
        expected = 0
        for unit in layout.stripe_units(stripe):
            if unit.disk != FAILED_DISK:
                expected ^= store.read_unit(unit.disk, unit.offset)
        assert store.read_unit(FAILED_DISK, offset) == expected, f"offset {offset}"


class TestContinuousOperation:
    @pytest.mark.parametrize("algorithm", ALGORITHMS, ids=lambda a: a.name)
    def test_full_lifecycle_each_algorithm(self, algorithm):
        array = build_array(algorithm=algorithm)
        workload, reconstructor = continuous_operation_story(array)
        assert workload.integrity_errors == []
        assert_array_fully_recovered(array)
        result = reconstructor.result()
        assert result.swept_units + result.user_built_units == result.total_units

    def test_raid5_full_lifecycle(self):
        array = build_array(stripe_size=5)
        workload, _ = continuous_operation_story(array)
        assert workload.integrity_errors == []
        assert_array_fully_recovered(array)

    def test_g3_full_lifecycle(self):
        array = build_array(stripe_size=3)
        workload, _ = continuous_operation_story(array)
        assert workload.integrity_errors == []
        assert_array_fully_recovered(array)

    def test_paper_21_disk_array_lifecycle(self):
        # The paper's C=21, G=4 configuration, scaled-down disks.
        array = build_array(num_disks=21, stripe_size=4, cylinders=2)
        workload, _ = continuous_operation_story(array, rate=100.0)
        assert workload.integrity_errors == []
        assert_array_fully_recovered(array)

    def test_second_failure_after_repair_is_survivable(self):
        array = build_array()
        continuous_operation_story(array)
        # Fail a *different* disk now; data must still be recoverable.
        controller = array.controller
        controller.fail_disk(0)
        controller.install_replacement()
        reconstructor = Reconstructor(controller, workers=4)
        array.env.run(until=reconstructor.start())
        assert controller.faults.fault_free
        store = controller.datastore
        for stripe in range(array.addressing.num_stripes):
            assert store.stripe_is_consistent(stripe)

    def test_service_never_stops(self):
        # Continuous operation: requests complete in every phase.
        array = build_array()
        workload, _ = continuous_operation_story(array)
        completions = sorted(
            complete for complete, _resp, _w in workload.recorder._samples
        )
        # No service gap longer than a second anywhere in the run.
        gaps = [b - a for a, b in zip(completions, completions[1:])]
        assert max(gaps) < 1_000.0


class TestParityRolesSurviveRecovery:
    def test_rebuilt_parity_units_match_recomputation(self):
        array = build_array()
        continuous_operation_story(array)
        layout = array.layout
        store = array.controller.datastore
        parity_offsets = [
            offset
            for offset in range(array.addressing.mapped_units_per_disk)
            if layout.stripe_of(FAILED_DISK, offset)[1] == PARITY_ROLE
        ]
        assert parity_offsets  # the failed disk held parity units too
        for offset in parity_offsets:
            stripe, _role = layout.stripe_of(FAILED_DISK, offset)
            expected = 0
            for j in range(layout.data_units_per_stripe):
                unit = layout.data_unit(stripe, j)
                expected ^= store.read_unit(unit.disk, unit.offset)
            assert store.read_unit(FAILED_DISK, offset) == expected
