"""Golden event traces: the kernel optimization safety net.

Every hot-path optimization of the event kernel must preserve
*bit-identical event ordering*: same events, same timestamps, same
dispatch order. These tests pin that property with checked-in golden
traces recorded by :class:`~repro.sim.tracing.EnvironmentTracer` over
two deterministic scenarios (fault-free service, and reconstruction
under load). Any change that reorders, adds, or drops a single kernel
dispatch fails here with the first diverging line.

Regenerating (ONLY when an intentional semantic change alters event
ordering — never to make an optimization pass):

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest \
        tests/integration/test_golden_trace.py -q
"""

import os
import pathlib

import pytest

from repro.recon import Reconstructor
from repro.sim.tracing import EnvironmentTracer
from repro.workload import SyntheticWorkload, WorkloadConfig
from tests.conftest import build_array

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"

#: Enough for every scenario below; an overflowing trace would silently
#: drop the oldest entries and defeat the comparison.
TRACE_CAPACITY = 400_000


def _serialize(tracer: EnvironmentTracer) -> str:
    assert tracer.dropped == 0, "trace overflowed; raise TRACE_CAPACITY"
    lines = [
        f"{entry.at_ms!r} {entry.kind} {entry.name} {int(entry.ok)}"
        for entry in tracer.entries
    ]
    return "\n".join(lines) + "\n"


def trace_fault_free() -> str:
    """~1.5 simulated seconds of steady fault-free service, C=21 G=5."""
    array = build_array(num_disks=21, stripe_size=5, with_datastore=False)
    tracer = EnvironmentTracer(array.env, capacity=TRACE_CAPACITY)
    workload = SyntheticWorkload(
        array.controller,
        WorkloadConfig(access_rate_per_s=210.0, read_fraction=0.5, seed=1992),
    )
    workload.run(duration_ms=1_500.0)
    array.env.run(until=1_500.0)
    text = _serialize(tracer)
    tracer.detach()
    return text


def trace_reconstruction() -> str:
    """Failure, replacement, and a 2-way rebuild under load, C=5 G=4.

    A 3-cylinder disk keeps the whole rebuild (252 units/disk) small
    enough that the golden fixture stays reviewable.
    """
    array = build_array(
        num_disks=5, stripe_size=4, cylinders=3, with_datastore=False
    )
    tracer = EnvironmentTracer(array.env, capacity=TRACE_CAPACITY)
    workload = SyntheticWorkload(
        array.controller,
        WorkloadConfig(access_rate_per_s=120.0, read_fraction=0.5, seed=7),
    )
    workload.run(duration_ms=float("inf"))
    array.env.run(until=400.0)
    array.controller.fail_disk(2)
    array.env.run(until=800.0)
    array.controller.install_replacement()
    Reconstructor(array.controller, workers=2).start()
    # A bounded window into the rebuild keeps the fixture reviewable;
    # the dispatch order of a partial rebuild pins the same hot paths
    # (sweep cycles, stripe locks, on-the-fly reads) as a full one.
    array.env.run(until=1_400.0)
    workload.stop()
    text = _serialize(tracer)
    tracer.detach()
    return text


SCENARIOS = {
    "trace_fault_free.txt": trace_fault_free,
    "trace_reconstruction.txt": trace_reconstruction,
}


def _first_divergence(expected: str, actual: str) -> str:
    expected_lines = expected.splitlines()
    actual_lines = actual.splitlines()
    for index, (want, got) in enumerate(zip(expected_lines, actual_lines)):
        if want != got:
            return f"first divergence at entry {index}:\n  golden: {want}\n  actual: {got}"
    return (
        f"length mismatch: golden has {len(expected_lines)} entries, "
        f"actual has {len(actual_lines)}"
    )


@pytest.mark.parametrize("fixture_name", sorted(SCENARIOS))
def test_trace_matches_golden(fixture_name):
    path = GOLDEN_DIR / fixture_name
    actual = SCENARIOS[fixture_name]()
    if os.environ.get("REPRO_REGEN_GOLDEN"):
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(actual, encoding="utf-8")
        pytest.skip(f"regenerated {path}")
    assert path.exists(), (
        f"golden fixture {path} missing; regenerate with REPRO_REGEN_GOLDEN=1"
    )
    expected = path.read_text(encoding="utf-8")
    assert actual == expected, _first_divergence(expected, actual)


def test_trace_is_reproducible_in_process():
    """The same scenario traced twice in one process is identical —
    guards the fixtures themselves against hidden global state."""
    assert trace_fault_free() == trace_fault_free()
