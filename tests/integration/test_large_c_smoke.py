"""Large-C smoke: a thousand-disk arithmetic layout maps blocks flat.

The point of the arithmetic layouts is that array width stops being a
memory axis: a C=1009 layout must cost no more resident memory to
build and exercise than a C=21 one (a materialized table for that
geometry would hold ~10M UnitAddress objects). Peak RSS is a
process-wide measurement, so each probe runs in its own subprocess
and reports ``ru_maxrss`` for itself; the test asserts the ratio.
"""

import json
import resource
import subprocess
import sys
import time

from repro.layout import PermutationStripingLayout
from repro.layout.criteria import evaluate_layout

#: One probe: build a layout, translate a strided scan, report peak RSS.
#: Runs under ``python -c`` so each geometry gets a fresh process.
_PROBE = """
import json, resource, sys
from repro.experiments.builders import build_layout
num_disks, stripe_size, layout_kind, translations = (
    int(sys.argv[1]), int(sys.argv[2]), sys.argv[3], int(sys.argv[4])
)
layout = build_layout(num_disks, stripe_size, layout=layout_kind)
span = layout.data_units_per_table
stride = 7919
logical = 0
checksum = 0
for _ in range(translations):
    address = layout.logical_to_physical(logical)
    checksum += address.disk
    if layout.physical_to_logical(address.disk, address.offset) != logical:
        raise SystemExit("inverse mapping diverged")
    logical = (logical + stride) % span
print(json.dumps({
    "peak_rss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
    "mapping_table_units": layout.mapping_table_units,
    "checksum": checksum,
}))
"""


def _probe(num_disks: int, stripe_size: int, layout_kind: str, translations: int) -> dict:
    completed = subprocess.run(
        [sys.executable, "-c", _PROBE,
         str(num_disks), str(stripe_size), layout_kind, str(translations)],
        capture_output=True, text=True, check=True,
    )
    return json.loads(completed.stdout)


class TestLargeCSmoke:
    def test_c1009_rss_within_2x_of_c21(self):
        # 200k translations each: enough that an O(translations) leak
        # or a lazily materialized table would dominate the footprint.
        small = _probe(21, 5, "table", 200_000)
        large = _probe(1009, 10, "prime", 200_000)
        assert small["mapping_table_units"] > 0
        assert large["mapping_table_units"] == 0
        ratio = large["peak_rss_kb"] / small["peak_rss_kb"]
        assert ratio <= 2.0, (
            f"C=1009 peaked at {large['peak_rss_kb']}KB vs C=21 at "
            f"{small['peak_rss_kb']}KB (ratio {ratio:.2f})"
        )

    def test_c1009_translation_wall_time(self):
        layout = PermutationStripingLayout(1009, 10)
        span = layout.data_units_per_table
        started = time.perf_counter()
        logical = 0
        for _ in range(100_000):
            layout.logical_to_physical(logical)
            logical = (logical + 7919) % span
        elapsed = time.perf_counter() - started
        # ~200k/s measured on the slowest CI host class; 20k/s is the
        # do-not-regress floor, not a performance target.
        assert elapsed < 5.0, f"100k translations took {elapsed:.1f}s"

    def test_c1009_criteria_pass_in_sampling_mode(self):
        reports = evaluate_layout(PermutationStripingLayout(1009, 10), mode="auto")
        verdicts = {r.name: r.passed for r in reports}
        # Criterion 6 fails for every declustered data mapping, as the
        # paper notes; everything else must hold at C=1009.
        assert verdicts.pop("maximal-parallelism") is False
        assert all(verdicts.values()), [str(r) for r in reports]

    def test_probe_process_reports_sane_rss(self):
        probe = _probe(21, 5, "auto", 1_000)
        assert probe["peak_rss_kb"] > 0
        assert probe["checksum"] > 0

    def test_own_process_has_resource_module(self):
        # Guard for the subprocess probes: ru_maxrss is positive KB on
        # Linux (bytes on macOS — a ratio is unit-agnostic either way).
        assert resource.getrusage(resource.RUSAGE_SELF).ru_maxrss > 0
