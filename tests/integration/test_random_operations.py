"""Property-based integration: random operation sequences never corrupt.

Hypothesis drives a random interleaving of reads, writes, large writes,
a failure, a replacement, and reconstruction against the data store,
asserting the array's one real invariant — every acknowledged write is
durable and recoverable — across all four algorithms.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.recon import ALGORITHMS, Reconstructor
from tests.conftest import build_array

FAILED = 1


@st.composite
def operation_scripts(draw):
    """A random script of (op, unit, value) steps plus a failure point."""
    length = draw(st.integers(min_value=5, max_value=25))
    steps = []
    for _ in range(length):
        op = draw(st.sampled_from(["read", "write", "stripe-write"]))
        unit = draw(st.integers(min_value=0, max_value=200))
        value = draw(st.integers(min_value=0, max_value=2**64 - 1))
        steps.append((op, unit, value))
    failure_at = draw(st.integers(min_value=0, max_value=length))
    algorithm = draw(st.sampled_from(ALGORITHMS))
    return steps, failure_at, algorithm


class TestRandomOperationSequences:
    @given(operation_scripts())
    @settings(max_examples=25, deadline=None)
    def test_acknowledged_writes_survive_failure_and_rebuild(self, script):
        steps, failure_at, algorithm = script
        array = build_array(cylinders=3, algorithm=algorithm)
        controller = array.controller
        g_data = array.layout.data_units_per_stripe
        capacity = array.addressing.num_data_units
        expected = {}

        def apply(op, unit, value):
            unit %= capacity - g_data
            if op == "read":
                request = array.run_op(controller.read(unit))
                if unit in expected:
                    assert request.read_values == [expected[unit]]
            elif op == "write":
                array.run_op(controller.write(unit, values=[value]))
                expected[unit] = value
            else:  # stripe-write, aligned
                base = (unit // g_data) * g_data
                values = [(value + i) % 2**64 for i in range(g_data)]
                array.run_op(controller.write(base, values=values))
                for i, v in enumerate(values):
                    expected[base + i] = v

        for index, (op, unit, value) in enumerate(steps):
            if index == failure_at and controller.faults.fault_free:
                controller.fail_disk(FAILED)
            apply(op, unit, value)
        if controller.faults.fault_free:
            controller.fail_disk(FAILED)

        controller.install_replacement()
        array.env.run(until=Reconstructor(controller, workers=2).start())

        # Post-repair: every acknowledged write is intact.
        for unit, value in expected.items():
            request = array.run_op(controller.read(unit))
            assert request.read_values == [value]
        # And every stripe's parity is consistent.
        store = controller.datastore
        for stripe in range(array.addressing.num_stripes):
            assert store.stripe_is_consistent(stripe)
