"""End-to-end: the real service, a real kill, a real resume.

Drives ``python -m repro serve`` as a subprocess with real (micro
scale) simulations:

1. submit a Monte Carlo campaign job, let at least one trial finish,
   then SIGKILL the service;
2. restart it over the same data directory: the job must resume from
   its trial checkpoint (not rerun finished trials) and complete;
3. the resumed result must be identical — same rows, same per-trial
   summaries — to an uninterrupted run of the same spec;
4. an identical resubmission against a warm cache must be served
   entirely from cache, with no trial executed.

Cache is disabled for the kill/resume halves so the checkpoint — not
the sweep cache — is what carries the finished trials across the kill.
"""

import json
import os
import pathlib
import signal
import socket
import subprocess
import sys
import time
import urllib.error
import urllib.request

import pytest

REPO = pathlib.Path(__file__).resolve().parents[2]

CAMPAIGN_SPEC = {
    "kind": "campaign",
    "scale": "tiny",
    "stripe_sizes": [4, 6],
    "trials": 2,
    "seed": 11,
    "mission_hours": 3.0,
}

DEADLINE_S = 120.0


class ServeProcess:
    def __init__(self, data_dir, cache_dir, port_file, port=0):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO / "src")
        self.process = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--port", str(port),
                "--data-dir", str(data_dir),
                "--cache-dir", str(cache_dir),
                "--port-file", str(port_file),
            ],
            cwd=str(REPO),
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
        )
        self.base = f"http://127.0.0.1:{self._wait_for_port(port_file)}"

    def _wait_for_port(self, port_file):
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            if self.process.poll() is not None:
                out = self.process.stdout.read().decode("utf-8", "replace")
                raise AssertionError(f"serve exited early:\n{out}")
            try:
                return json.loads(port_file.read_text(encoding="utf-8"))["port"]
            except (OSError, ValueError, KeyError):
                time.sleep(0.05)
        raise AssertionError("serve never wrote its port file")

    def request(self, method, path, payload=None):
        body = None if payload is None else json.dumps(payload).encode("utf-8")
        request = urllib.request.Request(
            self.base + path,
            data=body,
            headers={"Content-Type": "application/json"},
            method=method,
        )
        with urllib.request.urlopen(request, timeout=30.0) as response:
            return response.status, json.loads(response.read())

    def wait_until(self, path, predicate, deadline_s=DEADLINE_S):
        deadline = time.monotonic() + deadline_s
        while time.monotonic() < deadline:
            _status, body = self.request("GET", path)
            if predicate(body):
                return body
            time.sleep(0.2)
        raise AssertionError(f"timed out waiting on {path}; last: {body}")

    def kill(self):
        self.process.kill()
        self.process.wait(timeout=10.0)

    def terminate(self):
        if self.process.poll() is None:
            self.process.send_signal(signal.SIGINT)
            try:
                self.process.wait(timeout=10.0)
            except subprocess.TimeoutExpired:
                self.process.kill()
                self.process.wait(timeout=10.0)


def terminal(body):
    return body["state"] in ("done", "failed", "cancelled")


@pytest.mark.slow
def test_kill_resume_identity_and_warm_cache(tmp_path):
    data_dir = tmp_path / "data"
    ref_dir = tmp_path / "data-reference"
    warm_dir = tmp_path / "data-warm"
    cache_dir = tmp_path / "cache"
    total = len(CAMPAIGN_SPEC["stripe_sizes"]) * CAMPAIGN_SPEC["trials"]

    # -- 1: start, submit, kill mid-campaign ---------------------------
    serve = ServeProcess(data_dir, "none", tmp_path / "port1.json")
    try:
        status, job = serve.request("POST", "/jobs", CAMPAIGN_SPEC)
        assert status == 201 and job["state"] in ("queued", "running")
        job_id = job["id"]
        serve.wait_until(
            f"/jobs/{job_id}",
            lambda body: body["progress"].get("completed", 0) >= 1 or terminal(body),
        )
    finally:
        serve.kill()  # SIGKILL: no shutdown handler runs

    checkpoint_path = data_dir / "jobs" / f"{job_id}.checkpoint.json"
    checkpoint = json.loads(checkpoint_path.read_text(encoding="utf-8"))
    finished_before_kill = len(checkpoint["completed"])
    assert 1 <= finished_before_kill <= total

    # -- 2: restart over the same store; the job resumes itself --------
    serve = ServeProcess(data_dir, "none", tmp_path / "port2.json")
    try:
        resumed_job = serve.wait_until(f"/jobs/{job_id}", terminal)
        assert resumed_job["state"] == "done"
        assert resumed_job["resumes"] >= 1
        _status, body = serve.request("GET", f"/jobs/{job_id}/result")
        resumed = body["result"]
    finally:
        serve.terminate()
    assert resumed["sweep"]["trials_from_checkpoint"] == finished_before_kill
    assert resumed["sweep"]["executed"] == total - finished_before_kill

    # -- 3: uninterrupted reference run of the same spec ---------------
    serve = ServeProcess(ref_dir, cache_dir, tmp_path / "port3.json")
    try:
        _status, ref_job = serve.request("POST", "/jobs", CAMPAIGN_SPEC)
        assert ref_job["id"] == job_id  # same spec, same content address
        serve.wait_until(f"/jobs/{job_id}", lambda b: b["state"] == "done")
        _status, body = serve.request("GET", f"/jobs/{job_id}/result")
        reference = body["result"]
    finally:
        serve.terminate()

    assert resumed["rows"] == reference["rows"]
    assert resumed["trials"] == reference["trials"]

    # -- 4: identical resubmission against the warm cache --------------
    serve = ServeProcess(warm_dir, cache_dir, tmp_path / "port4.json")
    try:
        status, warm_job = serve.request("POST", "/jobs", CAMPAIGN_SPEC)
        # All trials are cached: the job is already done in the submit
        # response — no worker ran, nothing was queued.
        assert warm_job["state"] == "done"
        _status, body = serve.request("GET", f"/jobs/{job_id}/result")
        warm = body["result"]
    finally:
        serve.terminate()
    assert warm["sweep"]["executed"] == 0
    assert warm["sweep"]["cache_hits"] == total
    assert warm["rows"] == reference["rows"]


def free_port():
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


@pytest.mark.slow
def test_watch_reconnects_across_a_server_restart(tmp_path):
    """``repro job watch`` must ride out a killed-and-restarted server.

    The watcher is the real CLI in a subprocess. Mid-campaign the
    server is SIGKILLed; the watcher's stream tears, its reconnect
    attempts get connection-refused, and once the server restarts (same
    port, same data dir) the resumed job streams to ``done`` — the
    watcher exits 0 having printed a terminal event, with reconnect
    notices on stderr.
    """
    data_dir = tmp_path / "data"
    port = free_port()

    serve = ServeProcess(data_dir, "none", tmp_path / "port1.json", port=port)
    watcher = None
    try:
        status, job = serve.request("POST", "/jobs", CAMPAIGN_SPEC)
        assert status == 201
        job_id = job["id"]
        watcher = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "job",
                "--server", f"http://127.0.0.1:{port}",
                "watch", job_id,
                "--retries", "40",
                "--backoff", "0.2",
            ],
            cwd=str(REPO),
            env={**os.environ, "PYTHONPATH": str(REPO / "src")},
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
        )
        # Let at least one trial land so the watcher has streamed real
        # progress before the crash.
        serve.wait_until(
            f"/jobs/{job_id}",
            lambda body: body["progress"].get("completed", 0) >= 1
            or terminal(body),
        )
        serve.kill()  # SIGKILL: the watcher's stream tears mid-flight

        # A gap with no server at all: the watcher must retry through
        # connection-refused, not just a torn stream.
        time.sleep(1.0)
        serve = ServeProcess(
            data_dir, "none", tmp_path / "port2.json", port=port
        )
        out, err = watcher.communicate(timeout=DEADLINE_S)
    finally:
        if watcher is not None and watcher.poll() is None:
            watcher.kill()
            watcher.communicate(timeout=10.0)
        serve.terminate()

    err_text = err.decode("utf-8", "replace")
    assert watcher.returncode == 0, f"watch failed:\n{err_text}"
    assert "reconnecting from seq" in err_text
    events = [
        json.loads(line)
        for line in out.decode("utf-8").splitlines()
        if line.strip()
    ]
    assert events, "watcher printed no events"
    finals = [e for e in events if e.get("event") == "state"]
    assert finals[-1]["state"] == "done"
    # Both server processes contributed events: the stream carries the
    # pre-kill epoch and the post-restart epoch.
    assert any(e.get("event") in ("trial", "point") for e in events)
    seqs = [e["seq"] for e in events]
    assert seqs.count(1) >= 2, "no replay from the restarted process"
