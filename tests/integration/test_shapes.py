"""Coarse reproduction-shape assertions on the paper's 21-disk array.

These run real (micro-scale) simulations and check the *directional*
claims of the evaluation — who wins, not by how much. They are the
cheapest-possible versions of the claims EXPERIMENTS.md quantifies.
"""

import pytest

from repro.experiments import ScenarioConfig, run_scenario
from repro.experiments.scales import ScalePreset
from repro.recon import BASELINE

MICRO = ScalePreset(
    name="micro", cylinders=13, steady_duration_ms=4_000.0, warmup_ms=500.0,
    note="test-only",
)


def scenario(**overrides):
    base = dict(
        stripe_size=4,
        user_rate_per_s=105.0,
        read_fraction=0.5,
        scale=MICRO,
        seed=17,
    )
    base.update(overrides)
    return run_scenario(ScenarioConfig(**base))


class TestSection6Shapes:
    def test_fault_free_response_flat_in_alpha(self):
        # Figure 6-1: fault-free reads are insensitive to declustering.
        low = scenario(stripe_size=4, read_fraction=1.0, mode="fault-free")
        high = scenario(stripe_size=21, read_fraction=1.0, mode="fault-free")
        assert high.response.mean_ms == pytest.approx(low.response.mean_ms, rel=0.15)

    def test_degraded_reads_better_at_low_alpha(self):
        # Figure 6-1: smaller alpha degrades less.
        low = scenario(stripe_size=4, read_fraction=1.0, mode="degraded")
        high = scenario(stripe_size=21, read_fraction=1.0, mode="degraded")
        assert low.response.mean_ms < high.response.mean_ms

    def test_degraded_writes_can_beat_fault_free_at_low_alpha(self):
        # Section 7: write folding can make degraded *faster* than
        # fault-free at small alpha.
        fault_free = scenario(stripe_size=4, read_fraction=0.0, mode="fault-free")
        degraded = scenario(stripe_size=4, read_fraction=0.0, mode="degraded")
        assert degraded.response.mean_ms < fault_free.response.mean_ms * 1.05


class TestSection8Shapes:
    def test_declustering_speeds_reconstruction(self):
        # Figure 8-1: alpha = 0.15 reconstructs about twice as fast as
        # RAID 5 at rate 105.
        declustered = scenario(mode="recon", stripe_size=4)
        raid5 = scenario(mode="recon", stripe_size=21)
        assert declustered.reconstruction_time_s < raid5.reconstruction_time_s / 1.4

    def test_declustering_lowers_response_during_recovery(self):
        declustered = scenario(mode="recon", stripe_size=4)
        raid5 = scenario(mode="recon", stripe_size=21)
        assert declustered.response.mean_ms < raid5.response.mean_ms

    def test_parallel_reconstruction_is_faster_but_hurts_response(self):
        # Figures 8-3/8-4 vs 8-1/8-2.
        single = scenario(mode="recon", recon_workers=1)
        parallel = scenario(mode="recon", recon_workers=8)
        assert parallel.reconstruction_time_s < single.reconstruction_time_s / 2
        assert parallel.response.mean_ms > single.response.mean_ms

    def test_baseline_gets_no_free_reconstruction(self):
        result = scenario(mode="recon", algorithm=BASELINE)
        assert result.reconstruction.user_built_units == 0

    def test_higher_load_slows_reconstruction(self):
        light = scenario(mode="recon", user_rate_per_s=105.0)
        heavy = scenario(mode="recon", user_rate_per_s=210.0)
        assert heavy.reconstruction_time_s > light.reconstruction_time_s
