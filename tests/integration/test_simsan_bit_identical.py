"""The sanitizer's core contract: observation only.

A scenario run with a :class:`LockMonitor` attached must be
event-for-event identical to the same scenario without it — same
response statistics, same reconstruction time, same metrics block.
If this test fails, the monitor has perturbed the simulation and
every simsan verdict is meaningless.
"""

from repro.devtools.simsan import LockMonitor
from repro.experiments import ScenarioConfig, run_scenario
from repro.experiments.scales import ScalePreset

MICRO = ScalePreset(
    name="micro",
    cylinders=13,
    steady_duration_ms=3_000.0,
    warmup_ms=500.0,
    note="test-only",
)


def micro_config(**overrides):
    base = dict(
        stripe_size=4,
        user_rate_per_s=105.0,
        read_fraction=0.5,
        scale=MICRO,
        seed=7,
    )
    base.update(overrides)
    return ScenarioConfig(**base)


def summarize(result):
    """Every externally-visible number of one run, for exact compare."""
    recon = result.reconstruction
    return {
        "count": result.response.count,
        "mean_ms": result.response.mean_ms,
        "read_mean_ms": result.read_response.mean_ms,
        "write_mean_ms": result.write_response.mean_ms,
        "simulated_ms": result.simulated_ms,
        "requests_completed": result.requests_completed,
        "utilization": result.disk_utilization,
        "recon_ms": None if recon is None else recon.reconstruction_time_ms,
        "metrics": result.metrics,
        "integrity": result.integrity_errors,
    }


class TestBitIdentical:
    def test_degraded_run_unchanged_by_monitor(self):
        config = micro_config(mode="degraded")
        plain = run_scenario(config)
        monitor = LockMonitor()
        watched = run_scenario(config, lock_monitor=monitor)
        assert summarize(plain) == summarize(watched)
        # The micro mission cuts off with requests in flight, so some
        # acquires are legitimately unreleased at the end (that is what
        # expect_drained=False models); none may be over-released.
        assert monitor.acquires > 0
        assert monitor.releases <= monitor.acquires

    def test_recon_run_unchanged_by_monitor(self):
        config = micro_config(mode="recon")
        plain = run_scenario(config)
        monitor = LockMonitor()
        watched = run_scenario(config, lock_monitor=monitor)
        assert summarize(plain) == summarize(watched)
        assert monitor.releases <= monitor.acquires


class TestScenarioProtocolClean:
    def test_degraded_scenario_passes_the_sanitizer(self):
        # Beyond bit-identity: the real degraded-mode lock protocol
        # must produce zero violations once the static model declares
        # the piggyback closers (the CI smoke job runs the same check
        # at full scenario scale via `repro simsan`).
        from repro.devtools.simlint.project.modules import ProjectContext
        from repro.devtools.simsan import StaticLockModel
        import pathlib

        files = sorted(pathlib.Path("src/repro/array").rglob("*.py")) + sorted(
            pathlib.Path("src/repro/recon").rglob("*.py")
        )
        static = StaticLockModel.from_project(ProjectContext(files))
        # The micro mission ends with requests in flight, so drained-
        # at-end is not expected here (the CI smoke job asserts it on
        # full-length scenarios, which do drain).
        monitor = LockMonitor(static=static, expect_drained=False)
        run_scenario(micro_config(mode="degraded"), lock_monitor=monitor)
        monitor.finish()
        assert [v.message for v in monitor.violations] == []
