"""Property tests: arithmetic layouts against their table-based twins.

The arithmetic layouts claim to compute, in O(1) integer work, exactly
the mapping a materialized table would hold. These tests pin that
claim three ways:

- slot-for-slot agreement with an equivalent table layout on the
  paper-grid geometries (the cyclic family against the existing
  ``DeclusteredLayout``/``DualDeclusteredLayout`` constructions, the
  permutation family against a table materialized independently from
  the striping formula);
- criteria verdicts that agree between the table and arithmetic twins
  and between exact and sampled checking;
- the incremental sliding-window parallelism check against a
  brute-force per-window recount on the paper's C<=21 grid.
"""

import pytest

from repro.designs import cyclic_design
from repro.designs.tdesigns import cyclic_pq_design
from repro.layout import (
    PARITY_ROLE,
    Q_ROLE,
    CyclicArithmeticLayout,
    DeclusteredLayout,
    LayoutError,
    PermutationStripingLayout,
    TableParityLayout,
)
from repro.layout.criteria import (
    SamplePlan,
    check_maximal_parallelism,
    evaluate_layout,
    sample_plan,
)
from repro.layout.dual import DualDeclusteredLayout

#: (C, G) permutation-striping geometries: prime widths spanning the
#: paper's alpha range, both syndrome counts where G allows.
PERM_GRID = [(5, 3), (7, 3), (11, 4), (13, 5), (17, 4), (21 + 2, 6)]

#: Cyclic difference-family geometries with known full orbits,
#: including the paper width C=21 via the planar k=5 difference set.
CYCLIC_GRID = [
    ((7, (0, 1, 3)),),
    ((13, (0, 1, 3, 9)),),
    ((21, (3, 6, 7, 12, 14)),),
]


def materialize(layout) -> TableParityLayout:
    """An independent table twin: read every period slot once via the
    forward mapping, then let TableParityLayout's own validation prove
    the result tiles (bijection, balanced depths, no gaps)."""
    roles = list(range(layout.data_units_per_stripe))
    if layout.num_syndromes == 2:
        roles.append(Q_ROLE)
    roles.append(PARITY_ROLE)
    table = [
        [layout.stripe_unit(s, role) for role in roles]
        for s in range(layout.stripes_per_table)
    ]
    return TableParityLayout(
        num_disks=layout.num_disks,
        stripe_size=layout.stripe_size,
        table=table,
        num_syndromes=layout.num_syndromes,
    )


def assert_twins(arith, table) -> None:
    """Slot-for-slot, forward and inverse, across two table periods."""
    assert arith.num_disks == table.num_disks
    assert arith.stripe_size == table.stripe_size
    assert arith.stripes_per_table == table.stripes_per_table
    assert arith.table_depth == table.table_depth
    for s in range(arith.stripes_per_table * 2):
        for pos in range(arith.stripe_size):
            role = arith._role_of_pos(pos)
            assert arith.stripe_unit(s, role) == table.stripe_unit(s, role)
    for disk in range(arith.num_disks):
        for offset in range(arith.table_depth * 2):
            assert arith.stripe_of(disk, offset) == table.stripe_of(disk, offset)
    span = arith.data_units_per_table * 2
    for logical in range(span):
        address = arith.logical_to_physical(logical)
        assert address == table.logical_to_physical(logical)
        assert arith.physical_to_logical(address.disk, address.offset) == logical


class TestPermutationStriping:
    @pytest.mark.parametrize("num_disks,stripe_size", PERM_GRID)
    def test_matches_independent_table(self, num_disks, stripe_size):
        arith = PermutationStripingLayout(num_disks, stripe_size)
        assert_twins(arith, materialize(arith))

    @pytest.mark.parametrize("num_disks,stripe_size", [(7, 4), (13, 6)])
    def test_dual_syndrome_matches_table(self, num_disks, stripe_size):
        arith = PermutationStripingLayout(num_disks, stripe_size, num_syndromes=2)
        table = materialize(arith)
        assert_twins(arith, table)
        # Q lives where the formula says it does.
        q = arith.stripe_unit(0, Q_ROLE)
        assert table.stripe_unit(0, Q_ROLE) == q

    def test_formula_is_permutation_striping(self):
        # Independent spot check of the formula itself, not via
        # stripe_unit: rotation j maps unit index i to disk (j*i) % C.
        layout = PermutationStripingLayout(7, 3)
        for s in range(layout.stripes_per_table):
            rotation, stripe_in_rotation = divmod(s, 7)
            for pos in range(3):
                index = stripe_in_rotation * 3 + pos
                expected_disk = ((rotation + 1) * index) % 7
                role = layout._role_of_pos(pos)
                assert layout.stripe_unit(s, role).disk == expected_disk

    def test_composite_width_rejected(self):
        with pytest.raises(LayoutError, match="prime"):
            PermutationStripingLayout(9, 3)

    def test_full_width_stripe_rejected(self):
        with pytest.raises(LayoutError):
            PermutationStripingLayout(7, 7)


class TestCyclicArithmetic:
    @pytest.mark.parametrize("spec", CYCLIC_GRID)
    def test_matches_declustered_layout(self, spec):
        ((modulus, block),) = spec
        arith = CyclicArithmeticLayout((block,), modulus)
        table = DeclusteredLayout(cyclic_design((block,), modulus))
        assert_twins(arith, table)

    def test_dual_matches_dual_declustered(self):
        arith = CyclicArithmeticLayout(((0, 1, 3),), 7, num_syndromes=2)
        table = DualDeclusteredLayout(cyclic_pq_design(3))
        assert_twins(arith, table)

    def test_bad_family_rejected(self):
        with pytest.raises(LayoutError, match="difference family"):
            CyclicArithmeticLayout(((0, 1, 2),), 7)

    def test_no_table_state(self):
        arith = CyclicArithmeticLayout(((0, 1, 3),), 7)
        assert arith.mapping_table_units == 0


class TestCriteriaAgreement:
    @pytest.mark.parametrize("num_disks,stripe_size", [(7, 3), (13, 5)])
    def test_verdicts_agree_across_twins_and_modes(self, num_disks, stripe_size):
        arith = PermutationStripingLayout(num_disks, stripe_size)
        table = materialize(arith)
        exact_arith = evaluate_layout(arith, mode="exact")
        exact_table = evaluate_layout(table, mode="exact")
        sampled_arith = evaluate_layout(arith, mode="sample")
        for a, t, s in zip(exact_arith, exact_table, sampled_arith):
            assert a.name == t.name == s.name
            assert a.passed == t.passed == s.passed
        # Criterion 4 is the one place the twins legitimately differ:
        # the table twin holds a real table, the arithmetic twin none.
        by_name = {r.name: r for r in exact_arith}
        assert "no table" in by_name["efficient-mapping"].detail

    def test_dual_criteria_agree(self):
        arith = CyclicArithmeticLayout(((0, 1, 3),), 7, num_syndromes=2)
        table = DualDeclusteredLayout(cyclic_pq_design(3))
        for a, t in zip(evaluate_layout(arith, mode="exact"),
                        evaluate_layout(table, mode="exact")):
            assert (a.name, a.passed) == (t.name, t.passed)

    def test_sampling_is_deterministic(self):
        layout = PermutationStripingLayout(13, 5)
        first = evaluate_layout(layout, mode="sample", seed=7)
        second = evaluate_layout(layout, mode="sample", seed=7)
        assert [(r.name, r.passed, r.detail) for r in first] == [
            (r.name, r.passed, r.detail) for r in second
        ]

    def test_auto_mode_thresholds_on_width(self):
        small = PermutationStripingLayout(13, 5)
        assert sample_plan(small, mode="auto") is None
        assert sample_plan(small, mode="sample") is not None
        # At C=1009 auto must sample: exhaustive checks on a period of
        # over a million stripes are exactly what sampling exists for.
        large = PermutationStripingLayout(1009, 10)
        assert sample_plan(large, mode="auto") is not None

    def test_large_c_criteria_pass_in_sampling_mode(self):
        layout = PermutationStripingLayout(1009, 10)
        reports = evaluate_layout(layout, mode="auto")
        # Criterion 6 fails for every declustered data mapping — the
        # paper itself notes it (Figure 4-2); all the rest must hold.
        verdicts = {r.name: r.passed for r in reports}
        assert verdicts.pop("maximal-parallelism") is False
        assert all(verdicts.values()), [str(r) for r in reports]


def brute_force_parallelism(layout) -> tuple:
    """Per-window recount of criterion 6, no incremental state."""
    c = layout.num_disks
    total = layout.stripes_per_table * layout.data_units_per_stripe
    failures = 0
    first_failure = None
    distinct_sum = 0
    for start in range(total):
        disks = {
            layout.logical_to_physical(start + i).disk for i in range(c)
        }
        distinct_sum += len(disks)
        if len(disks) != c:
            failures += 1
            if first_failure is None:
                first_failure = start
    return failures, first_failure, distinct_sum


class TestSlidingWindowParallelism:
    @pytest.mark.parametrize(
        "make",
        [
            lambda: DeclusteredLayout(cyclic_design(((0, 1, 3),), 7)),
            lambda: DeclusteredLayout(cyclic_design(((3, 6, 7, 12, 14),), 21)),
            lambda: PermutationStripingLayout(13, 5),
            lambda: PermutationStripingLayout(17, 4),
        ],
    )
    def test_incremental_scan_matches_brute_force(self, make):
        # Satellite: the O(total) sliding scan must report exactly what
        # the old O(total * C) per-window recount reported.
        layout = make()
        failures, first_failure, distinct_sum = brute_force_parallelism(layout)
        report = check_maximal_parallelism(layout)
        total = layout.stripes_per_table * layout.data_units_per_stripe
        assert report.passed == (failures == 0)
        assert report.metrics["fraction_parallel"] == pytest.approx(
            1.0 - failures / total
        )
        assert report.metrics["mean_disk_coverage"] == pytest.approx(
            distinct_sum / (total * layout.num_disks)
        )
        if first_failure is not None:
            assert f"first at logical unit {first_failure}" in report.detail


class TestLargeCMapping:
    def test_c1009_roundtrip_without_table(self):
        layout = PermutationStripingLayout(1009, 10)
        assert layout.mapping_table_units == 0
        span = layout.data_units_per_table
        stride = 104729  # prime, so the probe scatters across the period
        logical = 0
        for _ in range(2000):
            address = layout.logical_to_physical(logical)
            assert 0 <= address.disk < 1009
            assert layout.physical_to_logical(address.disk, address.offset) == logical
            logical = (logical + stride) % span

    def test_c1009_stripes_are_disjoint(self):
        layout = PermutationStripingLayout(1009, 10)
        plan = SamplePlan(seed=3)
        for s in plan.rng().sample(range(layout.stripes_per_table), 32):
            units = layout.stripe_units(s)
            assert len({u.disk for u in units}) == layout.stripe_size
            assert units[-1] == layout.stripe_unit(s, PARITY_ROLE)
