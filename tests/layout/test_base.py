"""Unit tests for the table-based layout machinery."""

import pytest

from repro.layout import (
    PARITY_ROLE,
    LayoutError,
    LeftSymmetricRaid5Layout,
    ParityLayout,
    TableParityLayout,
    UnitAddress,
)


def tiny_layout() -> ParityLayout:
    """A hand-built 3-disk, G=2 (mirror-like) layout for edge testing."""
    table = [
        [UnitAddress(0, 0), UnitAddress(1, 0)],
        [UnitAddress(1, 1), UnitAddress(2, 0)],
        [UnitAddress(2, 1), UnitAddress(0, 1)],
    ]
    return TableParityLayout(num_disks=3, stripe_size=2, table=table, name="tiny")


class TestTableValidation:
    def test_valid_table_accepted(self):
        layout = tiny_layout()
        assert layout.table_depth == 2
        assert layout.stripes_per_table == 3

    def test_empty_table_rejected(self):
        with pytest.raises(LayoutError, match="empty"):
            TableParityLayout(num_disks=2, stripe_size=2, table=[])

    def test_wrong_stripe_size_rejected(self):
        with pytest.raises(LayoutError, match="units"):
            TableParityLayout(
                num_disks=3,
                stripe_size=3,
                table=[[UnitAddress(0, 0), UnitAddress(1, 0)]],
            )

    def test_double_assignment_rejected(self):
        with pytest.raises(LayoutError, match="twice"):
            TableParityLayout(
                num_disks=2,
                stripe_size=2,
                table=[
                    [UnitAddress(0, 0), UnitAddress(1, 0)],
                    [UnitAddress(0, 0), UnitAddress(1, 1)],
                ],
            )

    def test_unbalanced_depths_rejected(self):
        with pytest.raises(LayoutError, match="tile"):
            TableParityLayout(
                num_disks=3,
                stripe_size=2,
                table=[
                    [UnitAddress(0, 0), UnitAddress(1, 0)],
                    [UnitAddress(0, 1), UnitAddress(1, 1)],
                ],
            )

    def test_gap_in_offsets_rejected(self):
        with pytest.raises(LayoutError, match="tile"):
            TableParityLayout(
                num_disks=2,
                stripe_size=2,
                table=[[UnitAddress(0, 0), UnitAddress(1, 1)]],
            )

    def test_disk_out_of_range_rejected(self):
        with pytest.raises(LayoutError, match="outside"):
            TableParityLayout(
                num_disks=2,
                stripe_size=2,
                table=[[UnitAddress(0, 0), UnitAddress(5, 0)]],
            )

    def test_stripe_size_bounds(self):
        with pytest.raises(LayoutError):
            TableParityLayout(num_disks=3, stripe_size=1, table=[[UnitAddress(0, 0)]])
        with pytest.raises(LayoutError, match="exceeds"):
            TableParityLayout(
                num_disks=2,
                stripe_size=3,
                table=[[UnitAddress(0, 0), UnitAddress(1, 0), UnitAddress(0, 1)]],
            )


class TestMappings:
    def test_forward_inverse_roundtrip_within_table(self):
        layout = tiny_layout()
        for stripe in range(layout.stripes_per_table):
            for j in range(layout.data_units_per_stripe):
                address = layout.data_unit(stripe, j)
                assert layout.stripe_of(address.disk, address.offset) == (stripe, j)
            parity = layout.parity_unit(stripe)
            assert layout.stripe_of(parity.disk, parity.offset) == (stripe, PARITY_ROLE)

    def test_tiling_advances_offsets_and_stripes(self):
        layout = tiny_layout()
        base = layout.data_unit(0, 0)
        tiled = layout.data_unit(layout.stripes_per_table, 0)
        assert tiled.disk == base.disk
        assert tiled.offset == base.offset + layout.table_depth

    def test_stripe_of_beyond_first_table(self):
        layout = tiny_layout()
        stripe, role = layout.stripe_of(0, layout.table_depth)  # second table
        assert stripe == layout.stripes_per_table  # stripe 3's first unit
        assert role in (0, PARITY_ROLE)

    def test_logical_mapping_roundtrip(self):
        layout = LeftSymmetricRaid5Layout(5)
        for logical in range(40):
            address = layout.logical_to_physical(logical)
            assert layout.physical_to_logical(address.disk, address.offset) == logical

    def test_parity_units_map_to_none(self):
        layout = LeftSymmetricRaid5Layout(5)
        parity = layout.parity_unit(0)
        assert layout.physical_to_logical(parity.disk, parity.offset) is None

    def test_invalid_role_rejected(self):
        layout = tiny_layout()
        with pytest.raises(LayoutError):
            layout.stripe_unit(0, 5)
        with pytest.raises(LayoutError):
            layout.data_unit(0, 1)  # only one data unit for G=2

    def test_negative_addresses_rejected(self):
        layout = tiny_layout()
        with pytest.raises(LayoutError):
            layout.stripe_of(0, -1)
        with pytest.raises(LayoutError):
            layout.logical_to_physical(-1)
        with pytest.raises(LayoutError):
            layout.stripe_of(9, 0)

    def test_stripe_units_ordering(self):
        layout = tiny_layout()
        units = layout.stripe_units(0)
        assert len(units) == 2
        assert units[-1] == layout.parity_unit(0)


class TestStripeSizeMessages:
    def test_g1_message_names_syndrome_arithmetic(self):
        # G=1 must fail through the syndrome-count bound (the old
        # separate `stripe_size < 2` guard was unreachable dead code).
        with pytest.raises(
            LayoutError,
            match=r"stripe size 1 leaves no data units beside 1 syndrome unit\(s\)",
        ):
            TableParityLayout(num_disks=3, stripe_size=1, table=[[UnitAddress(0, 0)]])

    def test_g2_dual_syndrome_message(self):
        with pytest.raises(
            LayoutError,
            match=r"stripe size 2 leaves no data units beside 2 syndrome unit\(s\)",
        ):
            TableParityLayout(
                num_disks=3,
                stripe_size=2,
                table=[[UnitAddress(0, 0), UnitAddress(1, 0)]],
                num_syndromes=2,
            )


class TestBoundedCaches:
    def test_cache_never_exceeds_one_period(self):
        # Regression: the old _unit_cache/_l2p_cache grew one entry per
        # distinct address for the life of the layout — a full-disk
        # scan over many table iterations leaked without bound. The
        # period cache must stay capped at one table's worth of keys.
        layout = LeftSymmetricRaid5Layout(5)
        period = layout.data_units_per_table
        for logical in range(period * 7):
            address = layout.logical_to_physical(logical)
            assert layout.physical_to_logical(address.disk, address.offset) == logical
        assert len(layout._l2p_period_cache) <= period

    def test_arithmetic_scan_allocates_no_cache(self):
        from repro.layout import PermutationStripingLayout

        layout = PermutationStripingLayout(7, 3)
        for logical in range(layout.data_units_per_table * 3):
            address = layout.logical_to_physical(logical)
            assert layout.physical_to_logical(address.disk, address.offset) == logical
        assert layout.mapping_table_units == 0
        assert not hasattr(layout, "_l2p_period_cache")


class TestDerivedParameters:
    def test_alpha_and_overhead(self):
        layout = LeftSymmetricRaid5Layout(5)
        assert layout.declustering_ratio() == 1.0
        assert layout.parity_overhead() == pytest.approx(0.2)

    def test_render_table_shape(self):
        text = tiny_layout().render_table()
        lines = text.splitlines()
        assert "DISK0" in lines[0]
        assert len(lines) == 2 + 2  # header + rule + depth rows
