"""Unit tests for the individual criterion checks on crafted layouts."""

from repro.layout import TableParityLayout, UnitAddress
from repro.layout.criteria import (
    check_distributed_parity,
    check_efficient_mapping,
    check_large_write_optimization,
    check_single_failure_correcting,
    parity_units_per_disk,
    reconstruction_load_matrix,
)


def make_layout(table, num_disks, stripe_size):
    return TableParityLayout(num_disks=num_disks, stripe_size=stripe_size, table=table)


class TestSingleFailureCorrecting:
    def test_violation_detected(self):
        # G=2 stripe with both units on disk 0 — a broken table.
        table = [
            [UnitAddress(0, 0), UnitAddress(0, 1)],
            [UnitAddress(1, 0), UnitAddress(1, 1)],
        ]
        layout = make_layout(table, num_disks=2, stripe_size=2)
        report = check_single_failure_correcting(layout)
        assert not report.passed
        assert "stripe 0" in report.detail


class TestDistributedParity:
    def test_concentrated_parity_detected(self):
        # All parity on disk 2 (a RAID 4 shape).
        table = [
            [UnitAddress(0, 0), UnitAddress(1, 0), UnitAddress(2, 0)],
            [UnitAddress(0, 1), UnitAddress(1, 1), UnitAddress(2, 1)],
            [UnitAddress(1, 2), UnitAddress(2, 2), UnitAddress(0, 2)],
        ]
        layout = make_layout(table, num_disks=3, stripe_size=3)
        counts = parity_units_per_disk(layout)
        assert counts == [1, 0, 2]
        assert not check_distributed_parity(layout).passed


class TestDistributedReconstruction:
    def test_matrix_symmetry_for_balanced_layout(self):
        from repro.designs import complete_design
        from repro.layout import DeclusteredLayout

        layout = DeclusteredLayout(complete_design(5, 3))
        matrix = reconstruction_load_matrix(layout)
        values = {
            matrix[f][d]
            for f in range(5)
            for d in range(5)
            if f != d
        }
        assert len(values) == 1

    def test_diagonal_is_zero(self):
        from repro.designs import complete_design
        from repro.layout import DeclusteredLayout

        layout = DeclusteredLayout(complete_design(5, 3))
        matrix = reconstruction_load_matrix(layout)
        assert all(matrix[d][d] == 0 for d in range(5))


class TestEfficientMapping:
    def test_threshold(self):
        from repro.designs import complete_design
        from repro.layout import DeclusteredLayout

        layout = DeclusteredLayout(complete_design(5, 3))
        assert check_efficient_mapping(layout).passed
        assert not check_efficient_mapping(layout, max_table_units=10).passed


class TestLargeWrite:
    def test_paper_layouts_pass(self):
        from repro.designs import paper_design
        from repro.layout import DeclusteredLayout

        layout = DeclusteredLayout(paper_design(4))
        assert check_large_write_optimization(layout).passed
