"""The stripe vs row-major data mappings: criteria 5 and 6 trade off."""

import pytest

from repro.designs import complete_design, paper_design
from repro.layout import DeclusteredLayout, LayoutError
from repro.layout.criteria import (
    check_large_write_optimization,
    check_maximal_parallelism,
)


def layouts(g=4, v=5):
    design = complete_design(v, g) if v != 21 else paper_design(g)
    return (
        DeclusteredLayout(design),
        DeclusteredLayout(design, data_mapping="row-major"),
    )


class TestRowMajorMapping:
    def test_roundtrip(self):
        _, layout = layouts()
        for logical in range(3 * layout.data_units_per_table):
            address = layout.logical_to_physical(logical)
            assert layout.physical_to_logical(address.disk, address.offset) == logical

    def test_parity_slots_have_no_logical_number(self):
        _, layout = layouts()
        parity = layout.parity_unit(0)
        assert layout.physical_to_logical(parity.disk, parity.offset) is None

    def test_consecutive_units_fill_rows(self):
        _, layout = layouts()
        # The first row of the (5,4) table has 3 data units (2 parity),
        # on disks 0, 1, 2 at offset 0 — row-major takes them first.
        first = [layout.logical_to_physical(i) for i in range(3)]
        assert [u.offset for u in first] == [0, 0, 0]
        assert [u.disk for u in first] == [0, 1, 2]

    def test_stripe_of_logical_agrees_with_physical(self):
        _, layout = layouts()
        for logical in range(layout.data_units_per_table):
            address = layout.logical_to_physical(logical)
            assert layout.stripe_of_logical(logical) == layout.stripe_of(
                address.disk, address.offset
            )[0]

    def test_unknown_mapping_rejected(self):
        from repro.layout.base import TableParityLayout, UnitAddress

        table = [[UnitAddress(0, 0), UnitAddress(1, 0)]]
        with pytest.raises(LayoutError, match="data mapping"):
            TableParityLayout(2, 2, table, data_mapping="zigzag")


class TestCriteriaTradeOff:
    def test_stripe_mapping_large_write_yes_parallelism_no(self):
        stripe_layout, _ = layouts(g=4, v=21)
        assert check_large_write_optimization(stripe_layout).passed
        assert not check_maximal_parallelism(stripe_layout).passed

    def test_row_major_mapping_flips_the_trade(self):
        stripe_layout, row_layout = layouts(g=4, v=21)
        assert not check_large_write_optimization(row_layout).passed
        stripe_coverage = check_maximal_parallelism(stripe_layout).metrics[
            "mean_disk_coverage"
        ]
        row_coverage = check_maximal_parallelism(row_layout).metrics[
            "mean_disk_coverage"
        ]
        # Row-major windows cover most of the array (limited only by the
        # 1/G parity fraction); stripe-index windows repeat disks freely.
        assert row_coverage > stripe_coverage
        assert row_coverage > 0.8

    def test_supports_large_write_flag(self):
        stripe_layout, row_layout = layouts()
        assert stripe_layout.supports_large_write
        assert not row_layout.supports_large_write


class TestControllerWithRowMajor:
    def test_writes_and_reads_stay_correct(self):
        from repro.array import ArrayAddressing, ArrayController
        from repro.disk import scaled_spec
        from repro.sim import Environment

        env = Environment()
        layout = DeclusteredLayout(complete_design(5, 4), data_mapping="row-major")
        addressing = ArrayAddressing(layout, scaled_spec(5))
        controller = ArrayController(env, addressing, with_datastore=True)

        def run_op(event):
            return env.run(until=event)

        run_op(controller.write(0, values=[1, 2, 3, 4, 5]))
        request = run_op(controller.read(0, num_units=5))
        assert request.read_values == [1, 2, 3, 4, 5]
        # No large-write path: the mapping cannot guarantee alignment.
        assert "large-write" not in controller.stats.by_path
        for stripe in range(addressing.num_stripes):
            assert controller.datastore.stripe_is_consistent(stripe)

    def test_wide_read_touches_more_disks_than_stripe_mapping(self):
        from repro.array import ArrayAddressing, ArrayController
        from repro.disk import scaled_spec
        from repro.sim import Environment

        def disks_touched(data_mapping):
            env = Environment()
            layout = DeclusteredLayout(
                complete_design(5, 4), data_mapping=data_mapping
            )
            addressing = ArrayAddressing(layout, scaled_spec(5))
            controller = ArrayController(env, addressing)
            env.run(until=controller.read(0, num_units=5))
            return sum(1 for disk in controller.disks if disk.stats.completed)

        assert disks_touched("row-major") >= disks_touched("stripe")
