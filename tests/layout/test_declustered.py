"""The declustered layout must match the paper's Figures 2-3 and 4-2."""

import pytest

from repro.designs import complete_design, paper_design
from repro.layout import (
    DeclusteredLayout,
    LayoutError,
    PARITY_ROLE,
    evaluate_layout,
)
from repro.layout.declustered import build_full_table


class TestFigure23:
    """Figure 2-3: first block design table of the (5, 4) complete design."""

    EXPECTED = [
        # offset -> [(stripe, role) per disk]
        [(0, 0), (0, 1), (0, 2), (0, PARITY_ROLE), (1, PARITY_ROLE)],
        [(1, 0), (1, 1), (1, 2), (2, 2), (2, PARITY_ROLE)],
        [(2, 0), (2, 1), (3, 1), (3, 2), (3, PARITY_ROLE)],
        [(3, 0), (4, 0), (4, 1), (4, 2), (4, PARITY_ROLE)],
    ]

    def test_first_table_matches_the_figure(self):
        layout = DeclusteredLayout(complete_design(5, 4))
        for offset, row in enumerate(self.EXPECTED):
            for disk, expected in enumerate(row):
                assert layout.stripe_of(disk, offset) == expected, (disk, offset)


class TestFullTableConstruction:
    def test_full_table_has_g_duplications(self):
        design = complete_design(5, 4)
        layout = DeclusteredLayout(design)
        assert layout.stripes_per_table == design.k * design.b
        assert layout.table_depth == design.k * design.r

    def test_parity_rotates_across_duplications(self):
        # In duplication d, parity sits on tuple element G-1-d; for the
        # first tuple (0,1,2,3) that's disks 3, 2, 1, 0 in turn.
        design = complete_design(5, 4)
        layout = DeclusteredLayout(design)
        parity_disks = [
            layout.parity_unit(dup * design.b).disk for dup in range(design.k)
        ]
        assert parity_disks == [3, 2, 1, 0]

    def test_unrotated_table_exists_for_ablation(self):
        table = build_full_table(complete_design(5, 4), rotate_parity=False)
        assert len(table) == 5  # one copy of the design only

    def test_raid5_case_rejected(self):
        with pytest.raises(LayoutError, match="RAID 5"):
            DeclusteredLayout(complete_design(4, 4))


class TestCriteria:
    @pytest.mark.parametrize("g", [3, 4, 5, 6, 10])
    def test_paper_designs_meet_first_five_criteria(self, g):
        layout = DeclusteredLayout(paper_design(g))
        reports = {r.name: r for r in evaluate_layout(layout)}
        for name in (
            "single-failure-correcting",
            "distributed-reconstruction",
            "distributed-parity",
            "efficient-mapping",
            "large-write-optimization",
        ):
            assert reports[name].passed, reports[name].detail

    def test_maximal_parallelism_fails_as_the_paper_notes(self):
        # Section 4.2: the simple data mapping does not meet criterion 6.
        layout = DeclusteredLayout(complete_design(5, 4))
        reports = {r.name: r for r in evaluate_layout(layout)}
        assert not reports["maximal-parallelism"].passed

    def test_unrotated_layout_violates_distributed_parity(self):
        layout = DeclusteredLayout(complete_design(5, 4), rotate_parity=False)
        reports = {r.name: r for r in evaluate_layout(layout)}
        assert not reports["distributed-parity"].passed

    def test_reconstruction_load_is_lambda_times_g(self):
        # Each survivor reads exactly lam stripe units per block design
        # table, hence lam * G per full table (Section 4.2).
        design = paper_design(4)  # lam = 3, G = 4
        layout = DeclusteredLayout(design)
        reports = {r.name: r for r in evaluate_layout(layout)}
        load = reports["distributed-reconstruction"].metrics[
            "units_per_survivor_per_table"
        ]
        assert load == design.lam * design.k

    def test_parity_per_disk_is_r(self):
        # Each disk holds exactly r parity units per full table.
        design = paper_design(5)  # r = 5
        layout = DeclusteredLayout(design)
        reports = {r.name: r for r in evaluate_layout(layout)}
        assert reports["distributed-parity"].metrics["parity_units_per_disk"] == design.r


class TestAlpha:
    @pytest.mark.parametrize(
        "g, alpha", [(3, 0.10), (4, 0.15), (5, 0.20), (6, 0.25), (10, 0.45)]
    )
    def test_declustering_ratio(self, g, alpha):
        layout = DeclusteredLayout(paper_design(g))
        assert layout.declustering_ratio() == pytest.approx(alpha)

    def test_parity_overhead_formula(self):
        # 21 disks: parity fraction is 1/G = 1/(20 alpha + 1) (Section 6).
        for g in (3, 4, 5, 6, 10):
            layout = DeclusteredLayout(paper_design(g))
            alpha = layout.declustering_ratio()
            assert layout.parity_overhead() == pytest.approx(1.0 / (20 * alpha + 1))
