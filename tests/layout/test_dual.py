"""Dual-syndrome layouts: placement, balance, and the extended criteria."""

import pytest

from repro.designs import (
    boolean_quadruple_system,
    complete_design,
    cyclic_pq_design,
    paper_design,
)
from repro.layout import (
    PARITY_ROLE,
    Q_ROLE,
    CyclicDualRaid6Layout,
    DualDeclusteredLayout,
    LayoutError,
    evaluate_layout,
)
from repro.layout.criteria import (
    check_double_failure_correcting,
    check_distributed_q,
    check_pair_balanced_reconstruction,
    parity_units_per_disk,
    q_units_per_disk,
)
from repro.layout.raid5 import LeftSymmetricRaid5Layout


def dual_paper_layout():
    return DualDeclusteredLayout(paper_design(5))  # C=21, G=5


class TestDualDeclustered:
    def test_basic_parameters(self):
        layout = dual_paper_layout()
        assert layout.num_syndromes == 2
        assert layout.data_units_per_stripe == 3
        assert layout.parity_overhead() == pytest.approx(2 / 5)
        assert layout.declustering_ratio() == pytest.approx(4 / 20)
        assert layout.syndrome_roles == (PARITY_ROLE, Q_ROLE)

    def test_stripe_units_are_distinct_disks(self):
        layout = dual_paper_layout()
        for s in range(layout.stripes_per_table):
            units = layout.stripe_units(s)
            assert len(units) == 5
            assert len({u.disk for u in units}) == 5

    def test_p_and_q_spread_evenly(self):
        layout = dual_paper_layout()
        design = layout.design
        assert set(parity_units_per_disk(layout)) == {design.r}
        assert set(q_units_per_disk(layout)) == {design.r}

    def test_p_and_q_on_distinct_slots(self):
        layout = dual_paper_layout()
        for s in range(layout.stripes_per_table):
            assert layout.parity_unit(s) != layout.q_unit(s)

    def test_inverse_mapping_round_trips(self):
        layout = DualDeclusteredLayout(cyclic_pq_design(4))  # C=13, G=4
        seen = set()
        for s in range(layout.stripes_per_table):
            for role in [0, 1, PARITY_ROLE, Q_ROLE]:
                address = layout.stripe_unit(s, role)
                assert layout.stripe_of(address.disk, address.offset) == (s, role)
                seen.add(address)
        assert len(seen) == layout.stripes_per_table * 4

    def test_logical_mapping_skips_check_units(self):
        layout = dual_paper_layout()
        for logical in range(200):
            address = layout.logical_to_physical(logical)
            assert layout.physical_to_logical(address.disk, address.offset) == logical
        p = layout.parity_unit(0)
        q = layout.q_unit(0)
        assert layout.physical_to_logical(p.disk, p.offset) is None
        assert layout.physical_to_logical(q.disk, q.offset) is None

    def test_full_width_design_rejected(self):
        with pytest.raises(LayoutError):
            DualDeclusteredLayout(complete_design(4, 4))

    def test_too_narrow_stripe_rejected(self):
        with pytest.raises(LayoutError):
            DualDeclusteredLayout(complete_design(5, 2))

    def test_single_layout_has_no_q(self):
        layout = LeftSymmetricRaid5Layout(5)
        assert layout.num_syndromes == 1
        with pytest.raises(LayoutError):
            layout.q_unit(0)


class TestCyclicDualRaid6:
    def test_rotation(self):
        layout = CyclicDualRaid6Layout(7)
        c = 7
        for s in range(c):
            assert layout.parity_unit(s).disk == (c - 1 - s) % c
            assert layout.q_unit(s).disk == (c - 2 - s) % c
        assert set(parity_units_per_disk(layout)) == {1}
        assert set(q_units_per_disk(layout)) == {1}

    def test_alpha_is_one(self):
        assert CyclicDualRaid6Layout(7).declustering_ratio() == pytest.approx(1.0)

    def test_tiny_array_rejected(self):
        with pytest.raises(LayoutError):
            CyclicDualRaid6Layout(2)


class TestDualCriteria:
    def test_t3_design_passes_pair_balance(self):
        layout = DualDeclusteredLayout(boolean_quadruple_system(3))
        report = check_pair_balanced_reconstruction(layout)
        assert report.passed, report.detail

    def test_full_width_passes_pair_balance(self):
        report = check_pair_balanced_reconstruction(CyclicDualRaid6Layout(6))
        assert report.passed, report.detail

    def test_bibd_fails_pair_balance(self):
        # lam=1 but not triple-balanced: pairs of failures skew the load.
        layout = DualDeclusteredLayout(cyclic_pq_design(4))
        assert not check_pair_balanced_reconstruction(layout).passed

    def test_single_syndrome_fails_double_failure(self):
        assert not check_double_failure_correcting(LeftSymmetricRaid5Layout(5)).passed

    def test_dual_passes_double_failure(self):
        assert check_double_failure_correcting(dual_paper_layout()).passed

    def test_evaluate_layout_adds_dual_reports(self):
        names = [r.name for r in evaluate_layout(dual_paper_layout())]
        assert "double-failure-correcting" in names
        assert "pair-balanced-reconstruction" in names
        assert "distributed-q" in names
        assert len(names) == 9

    def test_evaluate_layout_unchanged_for_single(self):
        names = [r.name for r in evaluate_layout(LeftSymmetricRaid5Layout(5))]
        assert len(names) == 6
