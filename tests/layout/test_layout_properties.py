"""Property-based tests: layout invariants over many designs."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.designs import complete_design, default_catalog
from repro.layout import DeclusteredLayout, PARITY_ROLE

# A representative slice of the catalog (kept small so the suite stays
# fast): every paper design plus some family members.
CATALOG_KEYS = [
    (21, 3), (21, 4), (21, 5), (21, 6), (21, 10),
    (7, 3), (11, 5), (13, 4), (9, 3), (25, 5),
]


def catalog_layout(key):
    v, k = key
    return DeclusteredLayout(default_catalog().exact(v, k))


@st.composite
def layout_and_offset(draw):
    layout = catalog_layout(draw(st.sampled_from(CATALOG_KEYS)))
    disk = draw(st.integers(min_value=0, max_value=layout.num_disks - 1))
    offset = draw(st.integers(min_value=0, max_value=3 * layout.table_depth - 1))
    return layout, disk, offset


class TestInverseMapping:
    @given(layout_and_offset())
    @settings(max_examples=60, deadline=None)
    def test_stripe_of_roundtrips(self, case):
        layout, disk, offset = case
        stripe, role = layout.stripe_of(disk, offset)
        if role == PARITY_ROLE:
            address = layout.parity_unit(stripe)
        else:
            address = layout.data_unit(stripe, role)
        assert (address.disk, address.offset) == (disk, offset)

    @given(layout_and_offset())
    @settings(max_examples=60, deadline=None)
    def test_logical_roundtrip(self, case):
        layout, disk, offset = case
        logical = layout.physical_to_logical(disk, offset)
        if logical is None:
            return
        address = layout.logical_to_physical(logical)
        assert (address.disk, address.offset) == (disk, offset)


class TestStripeInvariants:
    @given(st.sampled_from(CATALOG_KEYS), st.integers(min_value=0, max_value=500))
    @settings(max_examples=60, deadline=None)
    def test_stripes_never_repeat_a_disk(self, key, stripe):
        layout = catalog_layout(key)
        disks = [u.disk for u in layout.stripe_units(stripe)]
        assert len(set(disks)) == layout.stripe_size

    @given(st.sampled_from(CATALOG_KEYS), st.integers(min_value=0, max_value=500))
    @settings(max_examples=40, deadline=None)
    def test_every_unit_of_a_stripe_points_back(self, key, stripe):
        layout = catalog_layout(key)
        for role, unit in enumerate(layout.stripe_units(stripe)[:-1]):
            assert layout.stripe_of(unit.disk, unit.offset) == (stripe, role)
        parity = layout.stripe_units(stripe)[-1]
        assert layout.stripe_of(parity.disk, parity.offset) == (stripe, PARITY_ROLE)


class TestCoverage:
    @given(st.sampled_from(CATALOG_KEYS))
    @settings(max_examples=len(CATALOG_KEYS), deadline=None)
    def test_every_slot_in_a_table_is_mapped_exactly_once(self, key):
        layout = catalog_layout(key)
        seen = set()
        for stripe in range(layout.stripes_per_table):
            for unit in layout.stripe_units(stripe):
                slot = (unit.disk, unit.offset)
                assert slot not in seen
                seen.add(slot)
        assert len(seen) == layout.num_disks * layout.table_depth

    @given(st.sampled_from([(5, 3), (5, 4), (7, 3)]))
    @settings(max_examples=3, deadline=None)
    def test_complete_design_layouts_cover_all_slots(self, key):
        v, k = key
        layout = DeclusteredLayout(complete_design(v, k))
        logicals = set()
        for stripe in range(layout.stripes_per_table):
            for j in range(layout.data_units_per_stripe):
                logicals.add(stripe * layout.data_units_per_stripe + j)
        assert len(logicals) == layout.stripes_per_table * (k - 1)
