"""The left-symmetric RAID 5 layout must match the paper's Figure 2-1."""

import pytest

from repro.layout import LeftSymmetricRaid5Layout, PARITY_ROLE, LayoutError, evaluate_layout


class TestFigure21:
    """Figure 2-1 (C = 5): exact placement of every unit."""

    EXPECTED = [
        # offset -> [(stripe, role) per disk], role -1 = parity
        [(0, 0), (0, 1), (0, 2), (0, 3), (0, PARITY_ROLE)],
        [(1, 1), (1, 2), (1, 3), (1, PARITY_ROLE), (1, 0)],
        [(2, 2), (2, 3), (2, PARITY_ROLE), (2, 0), (2, 1)],
        [(3, 3), (3, PARITY_ROLE), (3, 0), (3, 1), (3, 2)],
        [(4, PARITY_ROLE), (4, 0), (4, 1), (4, 2), (4, 3)],
    ]

    def test_every_cell_matches_the_figure(self):
        layout = LeftSymmetricRaid5Layout(5)
        for offset, row in enumerate(self.EXPECTED):
            for disk, expected in enumerate(row):
                assert layout.stripe_of(disk, offset) == expected, (disk, offset)

    def test_data_is_sequential_through_parity_stripes(self):
        # User data D0.0, D0.1, ... maps to logical units 0, 1, ...
        layout = LeftSymmetricRaid5Layout(5)
        assert layout.logical_to_physical(0).disk == 0
        assert layout.logical_to_physical(3).disk == 3
        assert layout.logical_to_physical(4).disk == 4  # D1.0 on disk 4


class TestProperties:
    @pytest.mark.parametrize("c", [2, 3, 5, 8, 21])
    def test_all_six_criteria_pass(self, c):
        reports = evaluate_layout(LeftSymmetricRaid5Layout(c))
        failing = [r.name for r in reports if not r.passed]
        assert failing == []

    def test_alpha_is_one(self):
        assert LeftSymmetricRaid5Layout(21).declustering_ratio() == 1.0

    def test_table_is_square(self):
        layout = LeftSymmetricRaid5Layout(7)
        assert layout.stripes_per_table == 7
        assert layout.table_depth == 7

    def test_single_disk_rejected(self):
        with pytest.raises(LayoutError):
            LeftSymmetricRaid5Layout(1)
