"""Unit tests for Reddy's two-group layout (Section 3 related work)."""

import pytest

from repro.designs import complete_design
from repro.layout import LayoutError, evaluate_layout
from repro.layout.reddy import ReddyTwoGroupLayout


def reddy(v=6):
    return ReddyTwoGroupLayout(complete_design(v, v // 2))


class TestConstruction:
    def test_table_shape(self):
        layout = reddy(6)
        # Two stripes per design tuple; one row per tuple.
        assert layout.stripes_per_table == 2 * 20 * 3  # k duplications
        assert layout.table_depth == 60
        assert layout.stripe_size == 3

    def test_each_row_is_partitioned(self):
        layout = reddy(6)
        for offset in range(layout.table_depth):
            disks = set()
            for disk in range(6):
                stripe, _role = layout.stripe_of(disk, offset)
                disks.add(disk)
                # The two stripes of a row cover the row exactly.
            stripes = {layout.stripe_of(d, offset)[0] for d in range(6)}
            assert len(stripes) == 2
            assert disks == set(range(6))

    def test_alpha_is_fixed_near_half(self):
        layout = reddy(6)
        assert layout.declustering_ratio() == pytest.approx(2 / 5)
        layout10 = reddy(10)
        assert layout10.declustering_ratio() == pytest.approx(4 / 9)

    def test_odd_disk_count_rejected(self):
        with pytest.raises(LayoutError, match="even"):
            ReddyTwoGroupLayout(complete_design(7, 3))

    def test_wrong_k_rejected(self):
        with pytest.raises(LayoutError, match="C/2"):
            ReddyTwoGroupLayout(complete_design(6, 2))


class TestCriteria:
    def test_core_criteria_pass(self):
        layout = reddy(6)
        reports = {r.name: r for r in evaluate_layout(layout)}
        assert reports["single-failure-correcting"].passed
        assert reports["distributed-reconstruction"].passed
        assert reports["distributed-parity"].passed

    def test_pair_balance_constant_matches_theory(self):
        # Two disks share a group in lam rows (both inside the tuple)
        # plus b - 2r + lam rows (both outside); the full table holds k
        # duplications of the row set.
        design = complete_design(6, 3)
        layout = ReddyTwoGroupLayout(design)
        reports = {r.name: r for r in evaluate_layout(layout)}
        load = reports["distributed-reconstruction"].metrics[
            "units_per_survivor_per_table"
        ]
        shared_rows = design.lam + design.b - 2 * design.r + design.lam
        assert load == shared_rows * design.k

    def test_larger_even_array(self):
        layout = reddy(10)
        reports = {r.name: r for r in evaluate_layout(layout)}
        assert reports["distributed-reconstruction"].passed
        assert reports["distributed-parity"].passed


class TestEndToEnd:
    def test_reconstruction_is_bit_exact(self):
        from repro.array import ArrayAddressing, ArrayController
        from repro.disk import scaled_spec
        from repro.recon import Reconstructor
        from repro.sim import Environment

        env = Environment()
        layout = reddy(6)
        addressing = ArrayAddressing(layout, scaled_spec(10))
        controller = ArrayController(env, addressing, with_datastore=True)
        controller.fail_disk(2)
        controller.install_replacement()
        env.run(until=Reconstructor(controller, workers=4).start())
        store = controller.datastore
        for stripe in range(addressing.num_stripes):
            assert store.stripe_is_consistent(stripe)
        for offset in range(addressing.mapped_units_per_disk):
            stripe, _role = layout.stripe_of(2, offset)
            expected = 0
            for unit in layout.stripe_units(stripe):
                if unit.disk != 2:
                    expected ^= store.read_unit(unit.disk, unit.offset)
            assert store.read_unit(2, offset) == expected
