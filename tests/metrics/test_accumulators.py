"""Unit tests for warmup-window-aware accumulators."""

import pytest

from repro.metrics import Counter, TimeWeightedGauge, WindowedDuration


class TestCounter:
    def test_counts_up(self):
        counter = Counter()
        counter.increment()
        counter.increment(4)
        assert counter.value == 5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter().increment(-1)


class TestWindowedDuration:
    def test_interval_fully_inside_window(self):
        window = WindowedDuration(since_ms=100.0)
        window.add(200.0, 250.0)
        assert window.total_ms == 50.0

    def test_interval_straddling_boundary_is_clipped(self):
        window = WindowedDuration(since_ms=100.0)
        window.add(50.0, 150.0)
        assert window.total_ms == 50.0

    def test_interval_entirely_before_boundary_ignored(self):
        window = WindowedDuration(since_ms=100.0)
        window.add(10.0, 90.0)
        assert window.total_ms == 0.0

    def test_rejects_backward_interval(self):
        with pytest.raises(ValueError):
            WindowedDuration().add(20.0, 10.0)

    def test_utilization(self):
        window = WindowedDuration(since_ms=100.0)
        window.add(100.0, 150.0)
        window.add(180.0, 200.0)
        assert window.utilization(200.0) == pytest.approx(0.7)

    def test_zero_length_window_reports_zero(self):
        window = WindowedDuration(since_ms=100.0)
        assert window.utilization(100.0) == 0.0
        assert window.utilization(50.0) == 0.0  # end before boundary


class TestTimeWeightedGauge:
    def test_mean_weights_values_by_hold_time(self):
        gauge = TimeWeightedGauge()
        gauge.add(2, 0.0)   # depth 2 over [0, 10)
        gauge.add(-1, 10.0)  # depth 1 over [10, 30)
        assert gauge.mean(30.0) == pytest.approx((2 * 10 + 1 * 20) / 30)
        assert gauge.maximum == 2

    def test_set_is_absolute(self):
        gauge = TimeWeightedGauge()
        gauge.set(4.0, 0.0)
        gauge.set(0.0, 5.0)
        assert gauge.mean(10.0) == pytest.approx(2.0)
        assert gauge.maximum == 4.0

    def test_time_before_boundary_is_excluded(self):
        gauge = TimeWeightedGauge(since_ms=100.0)
        gauge.add(8, 0.0)    # held through warmup — must not count
        gauge.add(-8, 100.0)
        gauge.add(1, 100.0)
        assert gauge.mean(200.0) == pytest.approx(1.0)

    def test_max_only_tracks_values_held_past_boundary(self):
        gauge = TimeWeightedGauge(since_ms=100.0)
        gauge.add(9, 0.0)
        gauge.add(-9, 50.0)  # spike lived entirely inside warmup
        gauge.add(2, 150.0)
        gauge.mean(200.0)
        assert gauge.maximum == 2

    def test_zero_length_window_reports_zero(self):
        gauge = TimeWeightedGauge(since_ms=100.0)
        gauge.add(3, 0.0)
        assert gauge.mean(100.0) == 0.0

    def test_summary_is_json_shape(self):
        gauge = TimeWeightedGauge()
        gauge.add(1, 0.0)
        assert gauge.summary(10.0) == {"mean": 1.0, "max": 1.0}
