"""Unit tests for the streaming fixed-bucket histogram."""

import json

import pytest

from repro.metrics import DEFAULT_LATENCY_BOUNDS_MS, StreamingHistogram


class TestBucketPlacement:
    def test_upper_edges_are_inclusive(self):
        hist = StreamingHistogram(bounds=[1.0, 2.0, 4.0])
        hist.record(1.0)  # exactly on an edge -> that bucket, not the next
        hist.record(1.5)
        hist.record(4.0)
        assert hist.counts == [1, 1, 1, 0]

    def test_overflow_bucket(self):
        hist = StreamingHistogram(bounds=[1.0, 2.0])
        hist.record(99.0)
        assert hist.counts == [0, 0, 1]

    def test_rejects_unsorted_or_duplicate_edges(self):
        with pytest.raises(ValueError):
            StreamingHistogram(bounds=[2.0, 1.0])
        with pytest.raises(ValueError):
            StreamingHistogram(bounds=[1.0, 1.0])
        with pytest.raises(ValueError):
            StreamingHistogram(bounds=[])

    def test_exact_aggregates(self):
        hist = StreamingHistogram(bounds=[10.0])
        for value in (3.0, 7.0, 30.0):
            hist.record(value)
        assert hist.count == 3
        assert hist.mean == pytest.approx(40.0 / 3)
        assert hist.minimum == 3.0
        assert hist.maximum == 30.0


class TestQuantiles:
    def test_empty_is_zero(self):
        assert StreamingHistogram().quantile(0.99) == 0.0

    def test_quantile_resolves_to_bucket_edge(self):
        hist = StreamingHistogram(bounds=[1.0, 2.0, 4.0, 8.0])
        # 9 samples in (1, 2], 1 sample in (4, 8]: p90 rank is 9 -> the
        # 2.0 bucket; p99 rank is 10 -> the 8.0 bucket (clamped to max).
        for _ in range(9):
            hist.record(1.5)
        hist.record(5.0)
        assert hist.quantile(0.90) == 2.0
        assert hist.quantile(0.99) == 5.0  # edge 8.0 clamped to observed max

    def test_edge_clamped_to_observed_minimum(self):
        hist = StreamingHistogram(bounds=[1.0, 2.0])
        hist.record(1.8)
        # Single sample sits in the 2.0 bucket but p50 must not exceed
        # or undershoot the only observed value.
        assert hist.quantile(0.50) == 1.8

    def test_overflow_quantile_is_observed_maximum(self):
        hist = StreamingHistogram(bounds=[1.0])
        hist.record(100.0)
        hist.record(200.0)
        assert hist.quantile(0.99) == 200.0

    def test_matches_nearest_rank_within_one_bucket(self):
        # A fine ladder around the sample values keeps the bucketed
        # quantile equal to the exact nearest-rank answer.
        hist = StreamingHistogram(bounds=[float(k) for k in range(1, 101)])
        for value in range(1, 101):
            hist.record(float(value))
        assert hist.quantile(0.50) == 50.0
        assert hist.quantile(0.90) == 90.0
        assert hist.quantile(0.99) == 99.0


class TestSerialization:
    def test_default_ladder_is_geometric(self):
        assert DEFAULT_LATENCY_BOUNDS_MS[0] == 0.25
        assert DEFAULT_LATENCY_BOUNDS_MS[1] == 0.5
        assert len(DEFAULT_LATENCY_BOUNDS_MS) == 18

    def test_to_dict_round_trips_through_json(self):
        hist = StreamingHistogram()
        for value in (0.3, 2.0, 2.0, 40.0):
            hist.record(value)
        document = hist.to_dict()
        assert json.loads(json.dumps(document)) == document
        assert document["count"] == 4
        assert sum(document["counts"]) == 4
        assert len(document["counts"]) == len(document["bounds"]) + 1
