"""Unit tests for the per-run metrics registry and progress series."""

import json

import pytest

from repro.metrics import LATENCY_CLASSES, MetricsRegistry, ProgressSeries


class TestProgressSeries:
    def test_records_first_and_final_units(self):
        series = ProgressSeries(total_units=1000, max_points=10)
        for built in range(1, 1001):
            series.record(float(built), built)
        assert series.points[0][1] == 1
        assert series.points[-1][1] == 1000

    def test_decimates_to_roughly_max_points(self):
        series = ProgressSeries(total_units=10_000, max_points=16)
        for built in range(1, 10_001):
            series.record(float(built), built)
        assert len(series.points) <= 18  # ~max_points plus the endpoints

    def test_small_series_keeps_every_point(self):
        series = ProgressSeries(total_units=5)
        for built in range(1, 6):
            series.record(float(built) * 10, built)
        assert series.points == [(10.0, 1), (20.0, 2), (30.0, 3), (40.0, 4), (50.0, 5)]

    def test_rejects_degenerate_arguments(self):
        with pytest.raises(ValueError):
            ProgressSeries(total_units=0)
        with pytest.raises(ValueError):
            ProgressSeries(total_units=10, max_points=1)

    def test_to_dict_uses_json_native_lists(self):
        series = ProgressSeries(total_units=2)
        series.record(5.0, 1)
        series.record(9.0, 2)
        document = series.to_dict()
        assert document == {"total_units": 2, "points": [[5.0, 1], [9.0, 2]]}
        assert json.loads(json.dumps(document)) == document


class TestMetricsRegistry:
    def test_counter_get_or_create(self):
        registry = MetricsRegistry()
        registry.counter("foo").increment(3)
        registry.counter("foo").increment(2)
        assert registry.counter("foo").value == 5

    def test_latency_discards_warmup_samples(self):
        registry = MetricsRegistry(measure_since_ms=100.0)
        registry.record_latency("user-read", 5.0, now_ms=50.0)   # warmup
        registry.record_latency("user-read", 7.0, now_ms=150.0)
        document = registry.to_dict(end_ms=200.0)
        assert document["latency_ms"]["user-read"]["count"] == 1
        assert document["latency_ms"]["user-read"]["mean"] == 7.0

    def test_queue_gauge_shared_per_slot(self):
        registry = MetricsRegistry()
        assert registry.queue_gauge(3) is registry.queue_gauge(3)
        assert registry.queue_gauge(3) is not registry.queue_gauge(4)

    def test_queue_gauge_inherits_measurement_boundary(self):
        registry = MetricsRegistry(measure_since_ms=500.0)
        assert registry.queue_gauge(0).since_ms == 500.0

    def test_to_dict_shape(self):
        registry = MetricsRegistry(measure_since_ms=100.0)
        registry.counter("requests-completed").increment(9)
        for klass in LATENCY_CLASSES:
            registry.record_latency(klass, 4.0, now_ms=150.0)
        gauge = registry.queue_gauge(0)
        gauge.add(1, 100.0)
        gauge.add(-1, 300.0)
        series = registry.start_recon_progress(total_units=2)
        series.record(120.0, 1)
        series.record(140.0, 2)
        registry.set_disk_rows([{"disk": 0, "utilization": 0.5}, {"disk": 1}])

        document = registry.to_dict(end_ms=300.0)
        assert document["measure_since_ms"] == 100.0
        assert document["window_ms"] == 200.0
        assert document["counters"] == {"requests-completed": 9}
        assert sorted(document["latency_ms"]) == sorted(LATENCY_CLASSES)
        assert document["disks"][0]["queue_depth_mean"] == pytest.approx(1.0)
        assert document["disks"][0]["queue_depth_max"] == 1
        assert "queue_depth_mean" not in document["disks"][1]  # no gauge
        assert document["recon_progress"] == [
            {"total_units": 2, "points": [[120.0, 1], [140.0, 2]]}
        ]
        assert json.loads(json.dumps(document)) == document

    def test_window_never_negative(self):
        registry = MetricsRegistry(measure_since_ms=500.0)
        assert registry.to_dict(end_ms=100.0)["window_ms"] == 0.0
