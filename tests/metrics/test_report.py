"""Tests for ``python -m repro report``: golden text, cache equivalence."""

import json

import pytest

from repro.metrics.report import (
    _decimate,
    load_documents,
    main,
    render_document,
    render_result,
)

SYNTHETIC_DOCUMENT = {
    # The loader identifies result documents by their "response" key.
    "response": {"count": 300, "mean_ms": 21.5, "p90_ms": 32.0, "p99_ms": 64.0},
    "config": {
        "mode": "recon", "stripe_size": 4, "num_disks": 21,
        "user_rate_per_s": 105.0, "read_fraction": 0.5,
        "algorithm": "redirect", "scale": {"name": "micro"}, "seed": 7,
    },
    "metrics": {
        "measure_since_ms": 500.0, "end_ms": 3500.0, "window_ms": 3000.0,
        "counters": {"requests-completed": 300},
        "latency_ms": {
            "user-read": {"count": 150, "mean": 21.5, "min": 4.0, "max": 88.0,
                          "p50": 16.0, "p90": 32.0, "p99": 64.0,
                          "bounds": [1.0], "counts": [0, 150]},
            "recon-read": {"count": 40, "mean": 12.25, "min": 2.0, "max": 30.0,
                           "p50": 8.0, "p90": 16.0, "p99": 30.0,
                           "bounds": [1.0], "counts": [0, 40]},
        },
        "disks": [
            {"disk": 0, "utilization": 0.5124, "busy_ms": 1537.2,
             "completed": 180, "queue_depth_mean": 0.4321,
             "queue_depth_max": 3.0},
            {"disk": 1, "utilization": 0.25, "busy_ms": 750.0,
             "completed": 90, "queue_depth_mean": 0.125,
             "queue_depth_max": 2.0},
        ],
        "recon_progress": [
            {"total_units": 40,
             "points": [[600.0, 1], [1500.0, 20], [3400.0, 40]]},
        ],
    },
    "fault_summary": {"data_lost": False, "disk_failures": 1,
                      "repairs_completed": 1, "mean_repair_ms": 2412.5},
}

GOLDEN = """\
Scenario: mode=recon G=4 disks=21 rate=105.0/s reads=0.5 algorithm=redirect scale=micro seed=7

Latency by class (window 500..3500 ms):
class       count  mean ms  p50 ms  p90 ms  p99 ms
----------  -----  -------  ------  ------  ------
recon-read  40     12.250   8.000   16.000  30.000
user-read   150    21.500   16.000  32.000  64.000

Per-disk utilization (measurement window):
disk  util %  busy ms  completed  queue mean  queue max
----  ------  -------  ---------  ----------  ---------
0     51.2    1537.2   180        0.432       3
1     25.0    750.0    90         0.125       2

Reconstruction progress #1 (40 units):
t ms    built  fraction
------  -----  --------
600.0   1      0.025
1500.0  20     0.500
3400.0  40     1.000

Faults: data_lost=False disk_failures=1 repairs_completed=1 mean_repair_ms=2412.5"""


def rstripped(text):
    """Per-line rstrip: table cells are ljust-padded, goldens are not."""
    return [line.rstrip() for line in text.splitlines()]


class TestRenderDocument:
    def test_golden(self):
        assert rstripped(render_document(SYNTHETIC_DOCUMENT)) == GOLDEN.splitlines()

    def test_fallback_without_metrics_block(self):
        document = {
            "config": None,
            "response": {"count": 10, "mean_ms": 5.0, "p90_ms": 8.0, "p99_ms": 9.0},
            "read_response": {"count": 10, "mean_ms": 5.0, "p90_ms": 8.0,
                              "p99_ms": 9.0},
            "write_response": {"count": 0, "mean_ms": 0.0, "p90_ms": 0.0,
                               "p99_ms": 0.0},
        }
        text = render_document(document)
        assert "Response summary (no metrics block recorded):" in text
        assert "Latency by class" not in text

    def test_decimate_keeps_first_and_last(self):
        points = [[float(i), i] for i in range(100)]
        kept = _decimate(points, limit=12)
        assert len(kept) <= 12
        assert kept[0] == points[0]
        assert kept[-1] == points[-1]
        assert _decimate(points[:5], limit=12) == points[:5]


class TestSweepEquivalence:
    """Fresh and cached runs must render byte-identically."""

    @pytest.fixture(scope="class")
    def outcomes(self, tmp_path_factory):
        from repro.experiments import ScenarioConfig
        from repro.sweep import SweepOptions, run_sweep

        from tests.sweep.conftest import MICRO

        cache_dir = tmp_path_factory.mktemp("report-cache")
        config = ScenarioConfig(
            stripe_size=4, user_rate_per_s=105.0, read_fraction=1.0,
            scale=MICRO, seed=7,
        )
        options = SweepOptions(jobs=1, cache=cache_dir, progress=False)
        fresh = run_sweep([config], options)
        cached = run_sweep([config], options)
        return fresh, cached, cache_dir

    def test_cached_run_renders_identically(self, outcomes):
        fresh, cached, _cache_dir = outcomes
        assert cached.summary.cache_hits == 1
        assert render_result(fresh.results[0]) == render_result(cached.results[0])

    def test_cache_entry_file_renders_identically(self, outcomes):
        fresh, _cached, cache_dir = outcomes
        documents = load_documents([cache_dir])
        assert len(documents) == 1
        _label, document = documents[0]
        assert render_document(document) == render_result(fresh.results[0])

    def test_report_covers_metrics_sections(self, outcomes):
        fresh, _cached, _cache_dir = outcomes
        text = render_result(fresh.results[0])
        assert "Latency by class" in text
        assert "user-read" in text
        assert "Per-disk utilization" in text


class TestCli:
    def test_renders_files_and_directories(self, tmp_path, capsys):
        path = tmp_path / "doc.json"
        path.write_text(json.dumps(SYNTHETIC_DOCUMENT), encoding="utf-8")
        assert main([str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert f"=== {path} ===" in out
        assert "Latency by class (window 500..3500 ms):" in out

    def test_cache_entry_unwrapped(self, tmp_path, capsys):
        entry = {"cache_format": 3, "package_version": "x",
                 "config": {}, "result": dict(SYNTHETIC_DOCUMENT, response={})}
        path = tmp_path / "entry.json"
        path.write_text(json.dumps(entry), encoding="utf-8")
        assert main([str(path)]) == 0
        assert "Latency by class" in capsys.readouterr().out

    def test_no_documents_is_an_error(self, tmp_path, capsys):
        (tmp_path / "junk.json").write_text("not json", encoding="utf-8")
        assert main([str(tmp_path)]) == 1
        assert "no result documents found" in capsys.readouterr().err

    def test_dispatch_through_repro_cli(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        path = tmp_path / "doc.json"
        path.write_text(json.dumps(SYNTHETIC_DOCUMENT), encoding="utf-8")
        assert cli_main(["report", str(path)]) == 0
        assert "Scenario: mode=recon" in capsys.readouterr().out
