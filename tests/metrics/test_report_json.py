"""Tests for ``repro report --json`` and :func:`document_report`.

The JSON report is the machine-readable twin of the rendered tables
and the exact payload the job service's result endpoint embeds — these
tests pin the shared shape so CLI and API cannot drift.
"""

import json

from repro.metrics.report import document_report, main

from tests.metrics.test_report import SYNTHETIC_DOCUMENT


class TestDocumentReport:
    def test_full_document(self):
        report = document_report(SYNTHETIC_DOCUMENT)
        assert report["scenario"] == SYNTHETIC_DOCUMENT["config"]
        assert report["window"] == {
            "measure_since_ms": 500.0,
            "end_ms": 3500.0,
            "window_ms": 3000.0,
        }
        assert sorted(report["latency_ms"]) == ["recon-read", "user-read"]
        assert report["latency_ms"]["user-read"]["p99"] == 64.0
        assert report["counters"] == {"requests-completed": 300}
        assert [row["disk"] for row in report["disks"]] == [0, 1]
        # Progress series are NOT decimated in the JSON form.
        assert report["recon_progress"][0]["points"] == [
            [600.0, 1], [1500.0, 20], [3400.0, 40],
        ]
        assert report["faults"]["mean_repair_ms"] == 2412.5

    def test_fallback_without_metrics_block(self):
        document = {
            "config": None,
            "response": {"count": 10, "mean_ms": 5.0},
            "read_response": {"count": 10, "mean_ms": 5.0},
            "write_response": {"count": 0, "mean_ms": 0.0},
        }
        report = document_report(document)
        assert report["scenario"] is None
        assert "latency_ms" not in report
        assert report["response_summary"]["reads"] == {"count": 10, "mean_ms": 5.0}
        assert report["faults"] is None

    def test_is_json_safe(self):
        json.dumps(document_report(SYNTHETIC_DOCUMENT))


class TestCliJson:
    def test_json_flag_emits_one_document(self, tmp_path, capsys):
        path = tmp_path / "run.json"
        path.write_text(json.dumps(SYNTHETIC_DOCUMENT), encoding="utf-8")
        assert main([str(path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["format"] == "repro-report/1"
        assert len(payload["reports"]) == 1
        entry = payload["reports"][0]
        assert entry["source"] == str(path)
        assert entry["report"] == document_report(SYNTHETIC_DOCUMENT)

    def test_missing_path_is_a_usage_error(self, tmp_path, capsys):
        missing = tmp_path / "nope.json"
        assert main([str(missing), "--json"]) == 2
        err = capsys.readouterr().err
        assert "no such file or directory" in err
        assert str(missing) in err

    def test_empty_tree_is_a_runtime_error(self, tmp_path, capsys):
        assert main([str(tmp_path), "--json"]) == 1
        assert "no result documents found" in capsys.readouterr().err
