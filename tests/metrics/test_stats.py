"""Unit tests for the shared nearest-rank percentile math.

The property test cross-checks the helper against an independent
exact-arithmetic reference (the inverted CDF over ``fractions``), the
same definition numpy implements as ``method='inverted_cdf'`` — no
numpy at runtime, the reference is computed here.
"""

import json
import math
import random
from fractions import Fraction

import pytest

from repro.metrics import DistributionSummary, nearest_rank_index, percentile


def reference_nearest_rank(ordered, q):
    """Exact inverted CDF: the sample at the smallest rank k with k/n >= q.

    Quantiles arrive as binary floats standing for decimal values
    (0.9 is really 0.9000000000000000222...), so the reference first
    recovers the intended decimal via ``limit_denominator`` — exactly
    the round-off the helper's rank slack absorbs.
    """
    n = len(ordered)
    intended_q = Fraction(q).limit_denominator(10**6)
    for k in range(1, n + 1):
        if Fraction(k, n) >= intended_q:
            return ordered[k - 1]
    return ordered[-1]


class TestNearestRankIndex:
    def test_matches_ceil_formula(self):
        for n in (1, 2, 3, 7, 10, 100):
            for q in (0.5, 0.9, 0.95, 0.99):
                assert nearest_rank_index(q, n) == max(1, math.ceil(q * n - 1e-9)) - 1

    def test_decimal_quantiles_hit_exact_ranks(self):
        # 0.9 * 10 is 9.000000000000002 in floats; the slack keeps the
        # rank at 9 (index 8) instead of spilling to 10.
        assert nearest_rank_index(0.9, 10) == 8
        assert nearest_rank_index(0.99, 100) == 98
        assert nearest_rank_index(0.9, 100) == 89
        assert nearest_rank_index(0.5, 2) == 0

    def test_extremes(self):
        assert nearest_rank_index(0.0, 5) == 0
        assert nearest_rank_index(1.0, 5) == 4
        assert nearest_rank_index(0.5, 1) == 0

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            nearest_rank_index(0.5, 0)
        with pytest.raises(ValueError):
            nearest_rank_index(1.5, 10)
        with pytest.raises(ValueError):
            nearest_rank_index(-0.1, 10)

    def test_property_200_randomized_sample_sets(self):
        # 200 randomized sorted sample sets, quantiles drawn from the
        # two-decimal grid experiments actually use; every answer must
        # match the exact-arithmetic inverted CDF.
        rng = random.Random(19920913)
        quantile_menu = [round(0.01 * k, 2) for k in range(1, 100)]
        for _ in range(200):
            n = rng.randint(1, 60)
            ordered = sorted(
                float(rng.randint(0, 50)) + rng.choice([0.0, 0.25, 0.5])
                for _ in range(n)
            )
            q = rng.choice(quantile_menu)
            assert percentile(ordered, q) == reference_nearest_rank(ordered, q), (
                f"n={n} q={q} ordered={ordered}"
            )


class TestDistributionSummary:
    def test_empty(self):
        summary = DistributionSummary.of([])
        assert summary.count == 0
        assert summary.mean == summary.std == 0.0
        assert summary.p50 == summary.p90 == summary.p99 == 0.0

    def test_population_std(self):
        summary = DistributionSummary.of([10.0, 20.0, 30.0])
        assert summary.mean == pytest.approx(20.0)
        assert summary.std == pytest.approx((200 / 3) ** 0.5)

    def test_sorts_its_input(self):
        summary = DistributionSummary.of([30.0, 10.0, 20.0])
        assert summary.minimum == 10.0
        assert summary.maximum == 30.0
        assert summary.p50 == 20.0

    def test_json_safe(self):
        summary = DistributionSummary.of([1.0, 2.0])
        assert json.loads(json.dumps(vars(summary))) == vars(summary)
