"""Unit tests for the reconstruction algorithm definitions."""

import pytest

from repro.recon import (
    ALGORITHMS,
    BASELINE,
    REDIRECT,
    REDIRECT_PIGGYBACK,
    USER_WRITES,
    ReconAlgorithm,
)
from repro.recon.algorithms import algorithm_by_name


class TestDefinitions:
    def test_four_algorithms_in_paper_order(self):
        assert [a.name for a in ALGORITHMS] == [
            "baseline", "user-writes", "redirect", "redirect+piggyback",
        ]

    def test_feature_lattice(self):
        # Each algorithm strictly adds one feature to the previous.
        assert not BASELINE.writes_to_replacement
        assert USER_WRITES.writes_to_replacement and not USER_WRITES.redirect_reads
        assert REDIRECT.redirect_reads and not REDIRECT.piggyback
        assert REDIRECT_PIGGYBACK.piggyback

    def test_piggyback_requires_redirect(self):
        with pytest.raises(ValueError):
            ReconAlgorithm(
                name="bad", writes_to_replacement=True,
                redirect_reads=False, piggyback=True,
            )

    def test_redirect_requires_user_writes(self):
        with pytest.raises(ValueError):
            ReconAlgorithm(
                name="bad", writes_to_replacement=False,
                redirect_reads=True, piggyback=False,
            )

    def test_lookup_by_name(self):
        assert algorithm_by_name("redirect") is REDIRECT

    def test_lookup_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            algorithm_by_name("turbo")

    def test_str(self):
        assert str(BASELINE) == "baseline"
