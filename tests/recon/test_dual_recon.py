"""Reconstruction on dual-syndrome arrays.

The tentpole robustness property: a P+Q rebuild interrupted by a
*second* disk failure resumes and completes — decoding each remaining
unit through the other failure via the surviving syndrome — instead of
aborting or surrendering stripes.
"""

from repro.array import syndromes as gf
from repro.array.datastore import initial_data_pattern
from repro.array.sparing import SparePool
from repro.layout.base import PARITY_ROLE, Q_ROLE
from repro.recon import Reconstructor
from tests.conftest import build_dual_array


def disk_is_bit_exact(array, disk):
    """Every unit of ``disk`` matches its pre-failure contents.

    Expected values come from the deterministic initial pattern (no
    user writes run in these tests), so the check stays valid even
    while *another* disk is still dead and poisoned.
    """
    layout = array.layout
    store = array.controller.datastore
    for offset in range(array.addressing.mapped_units_per_disk):
        stripe, role = layout.stripe_of(disk, offset)
        data = [
            initial_data_pattern(unit.disk, unit.offset)
            for unit in (
                layout.data_unit(stripe, j)
                for j in range(layout.data_units_per_stripe)
            )
        ]
        if role == PARITY_ROLE:
            expected = gf.p_of(data)
        elif role == Q_ROLE:
            expected = gf.q_of(data)
        else:
            expected = initial_data_pattern(disk, offset)
        if store.read_unit(disk, offset) != expected:
            return False
    return True


def rebuild(array, disk, workers=4):
    controller = array.controller
    controller.install_replacement(disk)
    reconstructor = Reconstructor(controller, workers=workers, disk=disk)
    done = reconstructor.start()
    array.env.run(until=done)
    return reconstructor


class TestDualRebuild:
    def test_single_failure_rebuild_is_bit_exact(self, dual_array):
        dual_array.controller.fail_disk(2)
        reconstructor = rebuild(dual_array, 2)
        assert dual_array.controller.faults.fault_free
        assert reconstructor.lost_units == 0
        assert disk_is_bit_exact(dual_array, 2)

    def test_rebuild_while_second_disk_is_down(self, dual_array):
        """Both failures present before the first rebuild starts."""
        controller = dual_array.controller
        controller.fail_disk(1)
        controller.fail_disk(5)
        first = rebuild(dual_array, 1)
        assert first.lost_units == 0
        assert disk_is_bit_exact(dual_array, 1)
        second = rebuild(dual_array, 5)
        assert second.lost_units == 0
        assert disk_is_bit_exact(dual_array, 5)
        assert controller.faults.fault_free

    def test_second_failure_mid_sweep_does_not_abort(self, dual_array):
        """The acceptance scenario: a rebuild interrupted by a second
        failure completes, resuming rather than aborting."""
        controller = dual_array.controller
        env = dual_array.env
        controller.fail_disk(1)
        controller.install_replacement(1)
        reconstructor = Reconstructor(controller, workers=1, disk=1)
        done = reconstructor.start()
        # Let the sweep get partway, then kill a second disk under it.
        env.run(until=env.timeout(200.0))
        status = controller.recon_statuses[1]
        assert 0 < status.built_count < status.total_units
        controller.fail_disk(5)
        env.run(until=done)
        assert reconstructor.lost_units == 0
        assert disk_is_bit_exact(dual_array, 1)
        # The second failure is still rebuildable afterwards.
        second = rebuild(dual_array, 5)
        assert second.lost_units == 0
        assert disk_is_bit_exact(dual_array, 5)
        assert controller.faults.fault_free

    def test_concurrent_rebuilds_through_spare_pool(self, dual_array):
        controller = dual_array.controller
        env = dual_array.env
        pool = SparePool(controller, spares=2, recon_workers=2)
        first_done = pool.handle_failure(1)
        env.run(until=env.timeout(100.0))
        second_done = pool.handle_failure(5)
        # Let the second repair process install its replacement; both
        # rebuilds are then in flight at once.
        env.run(until=env.timeout(1.0))
        assert len(controller.recon_statuses) == 2
        env.run(until=env.all_of([first_done, second_done]))
        assert controller.faults.fault_free
        assert pool.spares_remaining == 0
        assert [r.failed_disk for r in pool.repairs] == [1, 5]
        assert disk_is_bit_exact(dual_array, 1)
        assert disk_is_bit_exact(dual_array, 5)
