"""Tests for the Section-9 extensions: throttling and user priority."""

import pytest

from repro.disk.drive import KIND_RECON, KIND_USER
from repro.disk.scheduling import make_scheduler
from repro.disk.scheduling.priority import UserPriorityScheduler
from repro.recon import Reconstructor
from repro.workload import SyntheticWorkload, WorkloadConfig
from tests.conftest import build_array
from tests.recon.test_sweeper import FAILED, replacement_is_bit_exact


class TestThrottle:
    def test_throttled_reconstruction_is_slower_but_correct(self):
        plain = build_array()
        plain.controller.fail_disk(FAILED)
        plain.controller.install_replacement()
        plain.env.run(until=Reconstructor(plain.controller, workers=2).start())

        throttled = build_array()
        throttled.controller.fail_disk(FAILED)
        throttled.controller.install_replacement()
        throttled.env.run(
            until=Reconstructor(
                throttled.controller, workers=2, cycle_delay_ms=50.0
            ).start()
        )
        assert throttled.env.now > plain.env.now
        assert replacement_is_bit_exact(throttled)

    def test_negative_delay_rejected(self, small_array):
        small_array.controller.fail_disk(FAILED)
        small_array.controller.install_replacement()
        with pytest.raises(ValueError):
            Reconstructor(small_array.controller, cycle_delay_ms=-1.0)

    def test_throttle_lowers_response_time_under_load(self):
        def run(delay):
            array = build_array(with_datastore=False)
            controller = array.controller
            workload = SyntheticWorkload(
                controller, WorkloadConfig(access_rate_per_s=30, read_fraction=0.5)
            )
            workload.run(duration_ms=float("inf"))
            controller.fail_disk(FAILED)
            controller.install_replacement()
            reconstructor = Reconstructor(controller, workers=8, cycle_delay_ms=delay)
            array.env.run(until=reconstructor.start())
            workload.stop()
            return array.env.now, workload.recorder.summary().mean_ms

        fast_time, fast_resp = run(0.0)
        slow_time, slow_resp = run(100.0)
        assert slow_time > fast_time       # throttling stretches recovery
        assert slow_resp < fast_resp       # ...but relieves user traffic


class FakeRequest:
    def __init__(self, kind, cylinder=0):
        self.kind = kind
        self.cylinder = cylinder


class TestUserPriorityScheduler:
    def test_user_requests_served_first(self):
        scheduler = make_scheduler("fifo+priority", cylinders=100)
        assert isinstance(scheduler, UserPriorityScheduler)
        scheduler.push(FakeRequest(KIND_RECON))
        scheduler.push(FakeRequest(KIND_USER))
        scheduler.push(FakeRequest(KIND_RECON))
        order = [scheduler.pop(0, 1).kind for _ in range(3)]
        assert order == [KIND_USER, KIND_RECON, KIND_RECON]

    def test_len_spans_both_classes(self):
        scheduler = make_scheduler("cvscan+priority", cylinders=100)
        scheduler.push(FakeRequest(KIND_RECON, 5))
        scheduler.push(FakeRequest(KIND_USER, 9))
        assert len(scheduler) == 2

    def test_bad_modifier_rejected(self):
        with pytest.raises(ValueError):
            make_scheduler("cvscan+turbo", cylinders=100)

    def test_priority_policy_end_to_end(self):
        # Reconstruction under a priority scheduler must still complete
        # correctly with user traffic flowing. The user-writes algorithm
        # is the recommended pairing (see priority module docstring):
        # under baseline, sustained writes can re-dirty rebuilt units as
        # fast as a de-prioritized sweep rebuilds them.
        from repro.recon import USER_WRITES

        array = build_array(policy="cvscan+priority", algorithm=USER_WRITES)
        controller = array.controller
        workload = SyntheticWorkload(
            controller, WorkloadConfig(access_rate_per_s=60, read_fraction=0.5)
        )
        workload.run(duration_ms=float("inf"))
        controller.fail_disk(FAILED)
        controller.install_replacement()
        reconstructor = Reconstructor(controller, workers=4)
        array.env.run(until=reconstructor.start())
        workload.stop()
        array.env.run(until=workload.drained())
        assert workload.integrity_errors == []
        assert controller.faults.fault_free

    def test_priority_improves_user_response_during_recovery(self):
        from repro.recon import USER_WRITES

        def run(policy):
            array = build_array(
                policy=policy, with_datastore=False, algorithm=USER_WRITES
            )
            controller = array.controller
            workload = SyntheticWorkload(
                controller, WorkloadConfig(access_rate_per_s=30, read_fraction=0.5)
            )
            workload.run(duration_ms=float("inf"))
            controller.fail_disk(FAILED)
            controller.install_replacement()
            reconstructor = Reconstructor(controller, workers=8)
            array.env.run(until=reconstructor.start())
            workload.stop()
            return workload.recorder.summary().mean_ms

        assert run("cvscan+priority") < run("cvscan")
