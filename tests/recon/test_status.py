"""Unit tests for the reconstruction status map."""

import pytest

from repro.recon import ReconStatus
from repro.sim import Environment


@pytest.fixture
def status():
    return ReconStatus(Environment(), total_units=10)


class TestClaiming:
    def test_claims_in_offset_order(self, status):
        assert [status.claim_next() for _ in range(3)] == [0, 1, 2]

    def test_claims_skip_built_units(self, status):
        status.mark_built(0)
        status.mark_built(1)
        assert status.claim_next() == 2

    def test_exhaustion_returns_none(self, status):
        for _ in range(10):
            status.claim_next()
        assert status.claim_next() is None

    def test_unclaim_rewinds_cursor(self, status):
        offset = status.claim_next()
        status.claim_next()
        status.unclaim(offset)
        assert status.claim_next() == offset


class TestBuilding:
    def test_mark_built_counts(self, status):
        status.mark_built(3)
        assert status.built_count == 1
        assert status.is_built(3)
        assert status.fraction_built == pytest.approx(0.1, abs=0.001)

    def test_mark_built_idempotent(self, status):
        status.mark_built(3)
        status.mark_built(3)
        assert status.built_count == 1

    def test_completion_event_fires_once_all_built(self, status):
        for offset in range(10):
            assert not status.complete_event.triggered
            status.mark_built(offset)
        assert status.complete_event.triggered
        assert status.all_built

    def test_reconstruction_time(self):
        env = Environment()
        status = ReconStatus(env, total_units=2)
        status.started_at = env.now
        env.timeout(50.0)
        env.run()
        status.mark_built(0)
        status.mark_built(1)
        assert status.reconstruction_time_ms() == pytest.approx(50.0)

    def test_time_before_completion_raises(self, status):
        with pytest.raises(RuntimeError):
            status.reconstruction_time_ms()


class TestDirtying:
    def test_dirty_reverses_built(self, status):
        status.mark_built(4)
        status.mark_dirty(4)
        assert not status.is_built(4)
        assert status.built_count == 0
        assert status.dirtied_count == 1

    def test_dirty_rewinds_the_cursor(self, status):
        for _ in range(10):
            status.claim_next()
        status.mark_built(4)
        status.mark_dirty(4)
        assert status.claim_next() == 4

    def test_dirty_on_unbuilt_is_noop(self, status):
        status.mark_dirty(5)
        assert status.dirtied_count == 0

    def test_dirty_on_claimed_is_noop(self, status):
        offset = status.claim_next()
        status.mark_dirty(offset)
        assert status.is_claimed(offset)

    def test_dirty_after_completion_raises(self, status):
        for offset in range(10):
            status.mark_built(offset)
        with pytest.raises(RuntimeError):
            status.mark_dirty(0)


class TestValidation:
    def test_zero_units_rejected(self):
        with pytest.raises(ValueError):
            ReconStatus(Environment(), total_units=0)
