"""Unit tests for the reconstruction sweep."""

import pytest

from repro.array.datastore import initial_data_pattern
from repro.layout.base import PARITY_ROLE
from repro.recon import BASELINE, REDIRECT_PIGGYBACK, Reconstructor, USER_WRITES
from tests.conftest import build_array

FAILED = 1


def reconstruct(array, workers=1):
    controller = array.controller
    controller.fail_disk(FAILED)
    controller.install_replacement()
    reconstructor = Reconstructor(controller, workers=workers)
    done = reconstructor.start()
    array.env.run(until=done)
    return reconstructor


def replacement_is_bit_exact(array):
    """Every unit of the rebuilt disk equals XOR of its stripe peers."""
    controller = array.controller
    layout = array.layout
    store = controller.datastore
    for offset in range(array.addressing.mapped_units_per_disk):
        stripe, role = layout.stripe_of(FAILED, offset)
        expected = 0
        for unit in layout.stripe_units(stripe):
            if unit.disk != FAILED:
                expected ^= store.read_unit(unit.disk, unit.offset)
        if role != PARITY_ROLE:
            # Data unit: compare against its pre-failure pattern too.
            if store.read_unit(FAILED, offset) != initial_data_pattern(FAILED, offset):
                return False
        if store.read_unit(FAILED, offset) != expected:
            return False
    return True


class TestSweepCorrectness:
    def test_quiescent_rebuild_is_bit_exact(self, small_array):
        reconstruct(small_array)
        assert replacement_is_bit_exact(small_array)

    def test_all_units_swept_when_no_user_activity(self, small_array):
        reconstructor = reconstruct(small_array)
        result = reconstructor.result()
        assert result.swept_units == result.total_units
        assert result.user_built_units == 0

    def test_repair_returns_array_to_fault_free(self, small_array):
        reconstruct(small_array)
        assert small_array.controller.faults.fault_free

    def test_reads_after_repair_hit_the_replacement_directly(self, small_array):
        from tests.array.test_controller_degraded import find_logical_on_disk

        logical = find_logical_on_disk(small_array, FAILED)
        reconstruct(small_array)
        request = small_array.run_op(small_array.controller.read(logical))
        assert request.paths == ["read"]

    @pytest.mark.parametrize("workers", [1, 2, 8])
    def test_worker_count_preserves_correctness(self, workers):
        array = build_array()
        reconstruct(array, workers=workers)
        assert replacement_is_bit_exact(array)

    def test_parallel_is_faster_than_single(self):
        single = build_array()
        reconstruct(single, workers=1)
        parallel = build_array()
        reconstruct(parallel, workers=8)
        assert parallel.env.now < single.env.now

    def test_raid5_rebuild_is_bit_exact(self, raid5_array):
        reconstruct(raid5_array)
        assert replacement_is_bit_exact(raid5_array)


class TestCycleRecords:
    def test_one_cycle_per_swept_unit(self, small_array):
        reconstructor = reconstruct(small_array)
        result = reconstructor.result()
        assert len(result.cycles) == result.swept_units

    def test_phases_are_positive(self, small_array):
        reconstructor = reconstruct(small_array)
        for cycle in reconstructor.cycles:
            assert cycle.read_phase_ms > 0
            assert cycle.write_phase_ms > 0
            assert cycle.cycle_ms == pytest.approx(
                cycle.read_phase_ms + cycle.write_phase_ms
            )

    def test_phase_summary_tail_window(self, small_array):
        reconstructor = reconstruct(small_array)
        read_phase, write_phase = reconstructor.result().phase_summary(last_n=50)
        assert read_phase.count == 50
        assert write_phase.count == 50
        assert read_phase.mean_ms > 0

    def test_quiescent_sweep_offsets_are_ordered(self, small_array):
        reconstructor = reconstruct(small_array, workers=1)
        offsets = [c.offset for c in reconstructor.cycles]
        assert offsets == sorted(offsets)


class TestLifecycle:
    def test_reconstructor_requires_replacement(self, small_array):
        small_array.controller.fail_disk(FAILED)
        with pytest.raises(RuntimeError, match="replacement"):
            Reconstructor(small_array.controller)

    def test_double_start_rejected(self, small_array):
        controller = small_array.controller
        controller.fail_disk(FAILED)
        controller.install_replacement()
        reconstructor = Reconstructor(controller)
        reconstructor.start()
        with pytest.raises(RuntimeError, match="already"):
            reconstructor.start()

    def test_zero_workers_rejected(self, small_array):
        controller = small_array.controller
        controller.fail_disk(FAILED)
        controller.install_replacement()
        with pytest.raises(ValueError):
            Reconstructor(controller, workers=0)

    def test_result_reports_user_built_split(self):
        array = build_array(algorithm=USER_WRITES)
        controller = array.controller
        from tests.array.test_controller_degraded import find_logical_on_disk

        logical = find_logical_on_disk(array, FAILED)
        controller.fail_disk(FAILED)
        controller.install_replacement()
        # One user reconstruct-write before the sweep starts.
        array.run_op(controller.write(logical, values=[0xCAFE]))
        reconstructor = Reconstructor(controller)
        array.env.run(until=reconstructor.start())
        result = reconstructor.result()
        assert result.user_built_units == 1
        assert result.swept_units == result.total_units - 1


class TestConcurrentUserActivity:
    @pytest.mark.parametrize(
        "algorithm", [BASELINE, USER_WRITES, REDIRECT_PIGGYBACK]
    )
    def test_rebuild_correct_under_load(self, algorithm):
        import random

        array = build_array(algorithm=algorithm)
        controller = array.controller
        rng = random.Random(23)
        controller.fail_disk(FAILED)
        controller.install_replacement()
        reconstructor = Reconstructor(controller, workers=4)
        done = reconstructor.start()
        written = {}

        def chatter(env):
            while not done.triggered:
                logical = rng.randrange(array.addressing.num_data_units)
                if rng.random() < 0.5:
                    value = rng.getrandbits(64)
                    yield controller.write(logical, values=[value])
                    written[logical] = value
                else:
                    yield controller.read(logical)
                yield env.timeout(5.0)

        array.env.process(chatter(array.env))
        array.env.run(until=done)
        array.env.run(until=array.env.now + 1000.0)  # drain chatter
        # Every write must be readable, every stripe consistent.
        for logical, value in written.items():
            request = array.run_op(controller.read(logical))
            assert request.read_values == [value], (algorithm.name, logical)
        store = controller.datastore
        for stripe in range(array.addressing.num_stripes):
            assert store.stripe_is_consistent(stripe), (algorithm.name, stripe)
