"""Shared helpers for job-service tests.

``live_service`` boots the real asyncio HTTP server in a background
thread (its own event loop, ephemeral port) with an injectable execute
hook replacing the simulation, so tests drive the full submit → run →
stream → result path over real sockets in milliseconds.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.experiments.runner import ScenarioConfig
from repro.service.server import Service
from repro.sweep import result_to_dict

from tests.sweep.conftest import MICRO, fake_result, micro_spec_base


def micro_scenario_spec(stripe_size=4, **overrides):
    """A scenario job spec for one MICRO config."""
    config = ScenarioConfig(
        **micro_spec_base(stripe_size=stripe_size, **overrides)
    )
    return {"kind": "scenario", "config": config.to_key()}


def micro_sweep_spec(stripe_sizes=(4, 5)):
    base = micro_spec_base()
    base["scale"] = dataclasses.asdict(MICRO)
    return {
        "kind": "sweep",
        "axes": [["stripe_size", list(stripe_sizes)]],
        "base": base,
    }


def fake_campaign_result(config: ScenarioConfig):
    """A campaign-shaped fake: fault summary derived from the trial seed."""
    seed = config.fault_profile.seed
    return dataclasses.replace(
        fake_result(config),
        simulated_ms=3_600_000.0,
        fault_summary={
            "data_lost": seed % 2 == 1,
            "disk_failures": 2,
            "repairs_completed": 1,
            "mean_repair_ms": 1_000.0 + seed,
        },
    )


def fake_campaign_execute(key: dict) -> dict:
    return result_to_dict(fake_campaign_result(ScenarioConfig.from_key(key)))


class LiveService:
    """The real Service + HTTP server, on a thread, with sync helpers."""

    def __init__(self, data_dir, cache_dir=None, execute=None, max_jobs=1):
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="live-service", daemon=True
        )
        self._thread.start()
        self.service, self._server, self.port = asyncio.run_coroutine_threadsafe(
            self._start(data_dir, cache_dir, execute, max_jobs), self._loop
        ).result(timeout=30.0)
        self.base = f"http://127.0.0.1:{self.port}"

    async def _start(self, data_dir, cache_dir, execute, max_jobs):
        service = Service(
            data_dir, cache_dir=cache_dir, max_jobs=max_jobs, execute=execute
        )
        await service.start()
        server = await asyncio.start_server(
            service.handle_client, "127.0.0.1", 0
        )
        return service, server, server.sockets[0].getsockname()[1]

    def stop(self):
        async def _stop():
            self._server.close()
            await self._server.wait_closed()
            await self.service.close()

        asyncio.run_coroutine_threadsafe(_stop(), self._loop).result(timeout=30.0)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10.0)

    # -- sync HTTP helpers -------------------------------------------------
    def request(self, method, path, payload=None, timeout=30.0):
        """(status, parsed JSON body) — HTTP errors returned, not raised."""
        body = None if payload is None else json.dumps(payload).encode("utf-8")
        request = urllib.request.Request(
            self.base + path,
            data=body,
            headers={"Content-Type": "application/json"},
            method=method,
        )
        try:
            with urllib.request.urlopen(request, timeout=timeout) as response:
                return response.status, json.loads(response.read())
        except urllib.error.HTTPError as error:
            return error.code, json.loads(error.read())

    def get(self, path):
        return self.request("GET", path)

    def post(self, path, payload=None):
        return self.request("POST", path, payload)

    def stream(self, path, timeout=30.0):
        """Read an NDJSON stream to EOF; returns the parsed events."""
        request = urllib.request.Request(self.base + path)
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return [
                json.loads(line) for line in response if line.strip()
            ]

    def wait_for(self, job_id, states=("done", "failed", "cancelled")):
        """Follow the event stream until the job reaches ``states``."""
        events = self.stream(f"/jobs/{job_id}/events")
        final = [
            e for e in events
            if e.get("event") == "state" and e.get("state") in states
        ]
        assert final, f"stream ended without {states}: {events}"
        status, job = self.get(f"/jobs/{job_id}")
        assert status == 200
        return job, events


@pytest.fixture
def live_service(tmp_path):
    """Server with the plain fake execute and a cache; auto-stopped."""
    from tests.sweep.conftest import fake_execute

    service = LiveService(
        tmp_path / "data", cache_dir=tmp_path / "cache", execute=fake_execute
    )
    yield service
    service.stop()
