"""Engine-level tests: checkpoint/resume identity and metric condensing.

The acceptance property pinned here: a campaign interrupted mid-run
and resumed (fresh process, same store) produces a result document
identical — same rows, same per-trial summaries — to an uninterrupted
run of the same spec.
"""

import threading

import pytest

from repro.experiments.campaign import rows_from_summaries, trial_summary
from repro.experiments.runner import ScenarioConfig
from repro.service.engine import (
    EngineOptions,
    JobCancelled,
    condense_metrics,
    execute_job,
)
from repro.service.jobs import RUNNING, Job, JobStore
from repro.service.spec import parse_spec

from tests.service.conftest import fake_campaign_execute, fake_campaign_result

CAMPAIGN_SPEC = {
    "kind": "campaign",
    "scale": "tiny",
    "stripe_sizes": [4, 6],
    "trials": 2,
    "seed": 11,
    "mission_hours": 3.0,
}


def make_campaign_job():
    spec = parse_spec(CAMPAIGN_SPEC)
    return Job(id=spec.job_id(), kind="campaign", spec=spec.document, seq=1)


class CrashAfter:
    """Execute hook that dies after N successful trials — a simulated kill."""

    def __init__(self, successes):
        self.successes = successes
        self.calls = 0

    def __call__(self, key):
        if self.calls >= self.successes:
            raise RuntimeError("simulated kill")
        self.calls += 1
        return fake_campaign_execute(key)


class TestCampaignResume:
    def test_interrupted_plus_resumed_equals_uninterrupted(self, tmp_path):
        # Uninterrupted reference run.
        ref_store = JobStore(tmp_path / "ref")
        ref_job = make_campaign_job()
        reference = execute_job(
            ref_job, ref_store, EngineOptions(execute=fake_campaign_execute)
        )

        # Interrupted run: crashes after 2 of 4 trials...
        store = JobStore(tmp_path / "real")
        job = make_campaign_job()
        job.state = RUNNING
        store.save(job)
        with pytest.raises(RuntimeError, match="simulated kill"):
            execute_job(
                job, store,
                EngineOptions(execute=CrashAfter(2), retries=0),
            )
        # ...the kill left the job RUNNING on disk; restart recovery
        # requeues it with the checkpoint intact.
        recovered = JobStore(tmp_path / "real").recover()
        assert [j.id for j in recovered] == [job.id]
        resumed_job = recovered[0]
        assert resumed_job.resumes == 1
        resumed = execute_job(
            resumed_job, store, EngineOptions(execute=fake_campaign_execute),
            progress=lambda event: None,
        )

        assert resumed["rows"] == reference["rows"]
        assert resumed["trials"] == reference["trials"]
        assert resumed["sweep"]["trials_from_checkpoint"] == 2
        assert resumed["sweep"]["executed"] == 2  # only the missing trials ran

    def test_rows_match_the_cli_aggregation_path(self, tmp_path):
        store = JobStore(tmp_path)
        job = make_campaign_job()
        document = execute_job(
            job, store, EngineOptions(execute=fake_campaign_execute)
        )
        spec = parse_spec(CAMPAIGN_SPEC)
        summaries = [
            trial_summary(fake_campaign_result(config))
            for config in spec.configs
        ]
        assert document["rows"] == rows_from_summaries(
            summaries, trials=2, mission_hours=3.0
        )

    def test_result_document_is_persisted(self, tmp_path):
        store = JobStore(tmp_path)
        job = make_campaign_job()
        document = execute_job(
            job, store, EngineOptions(execute=fake_campaign_execute)
        )
        assert store.load_result(job.id) == document

    def test_cancel_token_raises_job_cancelled(self, tmp_path):
        cancel = threading.Event()
        cancel.set()
        with pytest.raises(JobCancelled):
            execute_job(
                make_campaign_job(), JobStore(tmp_path),
                EngineOptions(execute=fake_campaign_execute), cancel=cancel,
            )


class TestCondenseMetrics:
    def test_none_passthrough(self):
        assert condense_metrics(None) is None
        assert condense_metrics({}) is None

    def test_keeps_counters_and_quantiles_only(self):
        condensed = condense_metrics(
            {
                "window_ms": 3000.0,
                "counters": {"requests-completed": 10},
                "latency_ms": {
                    "user-read": {
                        "count": 10, "mean": 5.0, "min": 1.0, "max": 9.0,
                        "p50": 4.0, "p90": 8.0, "p99": 9.0,
                        "bounds": [1.0], "counts": [0, 10],
                    },
                },
                "disks": [{"disk": 0}],
            }
        )
        assert condensed == {
            "window_ms": 3000.0,
            "counters": {"requests-completed": 10},
            "latency_ms": {
                "user-read": {
                    "count": 10, "mean": 5.0,
                    "p50": 4.0, "p90": 8.0, "p99": 9.0,
                },
            },
        }
