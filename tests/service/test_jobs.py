"""Tests for the persistent job store and campaign checkpoints."""

import json

import pytest

from repro.service.checkpoint import CampaignCheckpoint
from repro.service.jobs import (
    DONE,
    QUEUED,
    RUNNING,
    Job,
    JobStore,
)


def make_job(job_id="abc123", seq=1, **overrides):
    fields = dict(
        id=job_id,
        kind="scenario",
        spec={"kind": "scenario", "configs": [{"stripe_size": 4}]},
        seq=seq,
    )
    fields.update(overrides)
    return Job(**fields)


class TestJobStore:
    def test_save_load_round_trip(self, tmp_path):
        store = JobStore(tmp_path)
        job = make_job(state=RUNNING, progress={"total": 3, "completed": 1})
        store.save(job)
        loaded = store.load(job.id)
        assert loaded == job

    def test_load_missing_returns_none(self, tmp_path):
        assert JobStore(tmp_path).load("nope") is None

    def test_load_rejects_unknown_format(self, tmp_path):
        store = JobStore(tmp_path)
        store.jobs_dir.mkdir(parents=True)
        store.job_path("old").write_text(
            json.dumps({"format": 999, "id": "old"}), encoding="utf-8"
        )
        assert store.load("old") is None

    def test_load_tolerates_corrupt_record(self, tmp_path):
        store = JobStore(tmp_path)
        store.jobs_dir.mkdir(parents=True)
        store.job_path("bad").write_text('{"truncated', encoding="utf-8")
        assert store.load("bad") is None
        assert store.list() == []

    def test_list_orders_by_sequence_and_skips_sidecars(self, tmp_path):
        store = JobStore(tmp_path)
        second = make_job("bbb", seq=2)
        first = make_job("aaa", seq=1)
        store.save(second)
        store.save(first)
        store.save_result("bbb", {"kind": "scenario"})
        CampaignCheckpoint(store.checkpoint_path("bbb"), "bbb", 1).save()
        assert [job.id for job in store.list()] == ["aaa", "bbb"]

    def test_next_seq_monotonic(self, tmp_path):
        store = JobStore(tmp_path)
        assert store.next_seq() == 1
        store.save(make_job("aaa", seq=store.next_seq()))
        assert store.next_seq() == 2

    def test_results_round_trip(self, tmp_path):
        store = JobStore(tmp_path)
        assert store.load_result("abc") is None
        store.save_result("abc", {"kind": "scenario", "points": []})
        assert store.load_result("abc") == {"kind": "scenario", "points": []}

    def test_recover_requeues_interrupted_jobs(self, tmp_path):
        store = JobStore(tmp_path)
        store.save(make_job("running1", seq=2, state=RUNNING))
        store.save(make_job("queued1", seq=1, state=QUEUED))
        store.save(make_job("done1", seq=3, state=DONE))
        runnable = store.recover()
        assert [job.id for job in runnable] == ["queued1", "running1"]
        recovered = store.load("running1")
        assert recovered.state == QUEUED
        assert recovered.resumes == 1  # persisted, so restarts accumulate
        assert store.load("done1").state == DONE


class TestCampaignCheckpoint:
    def test_record_and_reload(self, tmp_path):
        path = tmp_path / "job.checkpoint.json"
        checkpoint = CampaignCheckpoint(path, "job1", total_trials=3)
        checkpoint.record(1, {"stripe_size": 4}, {"data_lost": False})
        checkpoint.record(0, {"stripe_size": 4}, {"data_lost": True})
        reloaded = CampaignCheckpoint.load(path, "job1", total_trials=3)
        assert reloaded.done_indices == {0, 1}
        assert not reloaded.complete
        assert reloaded.completed[0]["summary"] == {"data_lost": True}

    def test_mismatched_identity_starts_fresh(self, tmp_path):
        path = tmp_path / "job.checkpoint.json"
        CampaignCheckpoint(path, "job1", 2).record(0, {}, {"data_lost": False})
        assert CampaignCheckpoint.load(path, "other", 2).completed == {}
        assert CampaignCheckpoint.load(path, "job1", 3).completed == {}
        assert CampaignCheckpoint.load(path, "job1", 2).done_indices == {0}

    def test_out_of_range_entries_are_dropped(self, tmp_path):
        path = tmp_path / "job.checkpoint.json"
        checkpoint = CampaignCheckpoint(path, "job1", 5)
        checkpoint.record(4, {}, {"data_lost": False})
        assert CampaignCheckpoint.load(path, "job1", 3).completed == {}

    def test_summaries_in_order_requires_completeness(self, tmp_path):
        path = tmp_path / "job.checkpoint.json"
        checkpoint = CampaignCheckpoint(path, "job1", 2)
        checkpoint.record(1, {}, {"data_lost": False})
        with pytest.raises(ValueError, match="trials \\[0\\]"):
            checkpoint.summaries_in_order()
        checkpoint.record(0, {}, {"data_lost": True})
        assert checkpoint.summaries_in_order() == [
            {"data_lost": True}, {"data_lost": False},
        ]

    def test_record_is_idempotent(self, tmp_path):
        path = tmp_path / "job.checkpoint.json"
        checkpoint = CampaignCheckpoint(path, "job1", 1)
        checkpoint.record(0, {}, {"data_lost": False})
        checkpoint.record(0, {}, {"data_lost": False})
        assert CampaignCheckpoint.load(path, "job1", 1).done_indices == {0}
