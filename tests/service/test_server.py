"""HTTP lifecycle tests against the live in-process service.

Every test here talks to the real asyncio server over a real socket;
only the simulation itself is replaced by an injectable execute hook.
"""

import threading

import pytest

from tests.service.conftest import (
    LiveService,
    fake_campaign_execute,
    micro_scenario_spec,
    micro_sweep_spec,
)
from tests.sweep.conftest import fake_execute


class GatedExecute:
    """Execute hook that blocks (per call index) until released."""

    def __init__(self, gate_calls=(0,)):
        self.gate_calls = set(gate_calls)
        self.started = threading.Event()
        self.release = threading.Event()
        self.calls = 0

    def __call__(self, key):
        call = self.calls
        self.calls += 1
        if call in self.gate_calls:
            self.started.set()
            assert self.release.wait(timeout=30.0), "gate never released"
        return fake_execute(key)


class TestBasics:
    def test_health_and_index(self, live_service):
        assert live_service.get("/healthz") == (200, {"ok": True})
        status, index = live_service.get("/")
        assert status == 200
        assert index["service"] == "repro"

    def test_unknown_route_is_404(self, live_service):
        status, body = live_service.get("/bogus")
        assert status == 404
        assert "no route" in body["error"]

    def test_wrong_method_is_405(self, live_service):
        status, body = live_service.request("POST", "/healthz")
        assert status == 404 or status == 405


class TestSubmitAndResult:
    def test_scenario_runs_to_done_with_report(self, live_service):
        status, job = live_service.post("/jobs", micro_scenario_spec())
        assert status == 201
        assert job["created"] is True
        final, events = live_service.wait_for(job["id"])
        assert final["state"] == "done"
        assert final["progress"] == {"total": 1, "completed": 1}
        status, body = live_service.get(f"/jobs/{job['id']}/result")
        assert status == 200
        result = body["result"]
        assert result["kind"] == "scenario"
        assert result["sweep"]["executed"] == 1
        # The per-point report is document_report output — same shape
        # as `repro report --json`.
        report = result["points"][0]["report"]
        assert "scenario" in report and "response_summary" in report

    def test_events_stream_in_order(self, live_service):
        status, job = live_service.post("/jobs", micro_sweep_spec((4, 5)))
        _final, events = live_service.wait_for(job["id"])
        kinds = [(e["event"], e.get("state") or e.get("kind")) for e in events]
        assert kinds[0] == ("state", "queued")
        assert kinds[1] == ("state", "running")
        assert ("point", "executed") in kinds
        assert kinds[-1] == ("state", "done")
        points = [e for e in events if e["event"] == "point"]
        assert [p["completed"] for p in points] == [1, 2]

    def test_malformed_spec_is_400_with_message(self, live_service):
        status, body = live_service.post("/jobs", {"kind": "bogus"})
        assert status == 400
        assert "kind" in body["error"]
        assert "Traceback" not in body["error"]

    def test_invalid_json_body_is_400(self, live_service):
        import urllib.error
        import urllib.request

        request = urllib.request.Request(
            live_service.base + "/jobs",
            data=b"{not json",
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(request, timeout=10.0)
        assert info.value.code == 400

    def test_result_before_done_is_409(self, tmp_path):
        gated = GatedExecute()
        service = LiveService(tmp_path / "data", execute=gated)
        try:
            _status, job = service.post("/jobs", micro_scenario_spec())
            assert gated.started.wait(timeout=10.0)
            status, body = service.get(f"/jobs/{job['id']}/result")
            assert status == 409
            assert "not done" in body["error"]
        finally:
            gated.release.set()
            service.stop()

    def test_unknown_job_is_404_everywhere(self, live_service):
        for method, path in [
            ("GET", "/jobs/feedbeef"),
            ("GET", "/jobs/feedbeef/result"),
            ("GET", "/jobs/feedbeef/events"),
            ("POST", "/jobs/feedbeef/cancel"),
        ]:
            status, body = live_service.request(method, path)
            assert status == 404, (method, path)
            assert "no such job" in body["error"]


class TestDedup:
    def test_identical_spec_returns_the_same_job(self, live_service):
        status, first = live_service.post("/jobs", micro_scenario_spec())
        assert status == 201
        live_service.wait_for(first["id"])
        status, second = live_service.post("/jobs", micro_scenario_spec())
        assert status == 200
        assert second["id"] == first["id"]
        assert second["created"] is False
        assert second["state"] == "done"

    def test_warm_resubmission_after_restart_is_served_inline(self, tmp_path):
        """Same cache, fresh job store: the job completes at submit time."""
        spec = micro_scenario_spec()
        first = LiveService(
            tmp_path / "data1", cache_dir=tmp_path / "cache", execute=fake_execute
        )
        try:
            _status, job = first.post("/jobs", spec)
            first.wait_for(job["id"])
        finally:
            first.stop()

        def no_workers(key):
            raise AssertionError("warm resubmission must not execute anything")

        second = LiveService(
            tmp_path / "data2", cache_dir=tmp_path / "cache", execute=no_workers
        )
        try:
            status, job = second.post("/jobs", spec)
            assert status == 201  # new job record in this store...
            assert job["state"] == "done"  # ...but already done: all cache
            _status, body = second.get(f"/jobs/{job['id']}/result")
            assert body["result"]["sweep"]["cache_hits"] == 1
            assert body["result"]["sweep"]["executed"] == 0
        finally:
            second.stop()

    def test_failed_job_requeues_on_resubmission(self, tmp_path):
        boom = {"count": 0}

        def flaky(key):
            boom["count"] += 1
            if boom["count"] == 1:
                raise RuntimeError("transient outage")
            return fake_execute(key)

        service = LiveService(tmp_path / "data", execute=flaky)
        try:
            # retries are spent inside run_sweep; exhaust them first.
            service.service.engine_options.retries = 0
            _status, job = service.post("/jobs", micro_scenario_spec())
            final, _events = service.wait_for(job["id"])
            assert final["state"] == "failed"
            assert "transient outage" in final["error"]
            status, again = service.post("/jobs", micro_scenario_spec())
            assert status == 200
            assert again["id"] == job["id"]
            final, _events = service.wait_for(job["id"])
            assert final["state"] == "done"
            assert final["error"] is None
        finally:
            service.stop()


class TestCancel:
    def test_cancel_queued_job(self, tmp_path):
        gated = GatedExecute()
        service = LiveService(tmp_path / "data", execute=gated, max_jobs=1)
        try:
            _status, running = service.post("/jobs", micro_scenario_spec(4))
            assert gated.started.wait(timeout=10.0)
            _status, queued = service.post("/jobs", micro_scenario_spec(5))
            assert queued["state"] == "queued"
            status, cancelled = service.post(f"/jobs/{queued['id']}/cancel")
            assert status == 200
            assert cancelled["state"] == "cancelled"  # immediate: never ran
            gated.release.set()
            final, _events = service.wait_for(running["id"])
            assert final["state"] == "done"  # the running job is unaffected
        finally:
            gated.release.set()
            service.stop()

    def test_cancel_running_job_stops_at_the_point_boundary(self, tmp_path):
        gated = GatedExecute(gate_calls=(0,))
        service = LiveService(tmp_path / "data", execute=gated)
        try:
            _status, job = service.post("/jobs", micro_sweep_spec((4, 5, 6)))
            assert gated.started.wait(timeout=10.0)
            status, body = service.post(f"/jobs/{job['id']}/cancel")
            assert status == 200
            assert body["cancel_requested"] is True
            gated.release.set()
            final, _events = service.wait_for(job["id"])
            assert final["state"] == "cancelled"
            assert gated.calls == 1  # points 2 and 3 never started
        finally:
            gated.release.set()
            service.stop()

    def test_cancel_terminal_job_is_409(self, live_service):
        _status, job = live_service.post("/jobs", micro_scenario_spec())
        live_service.wait_for(job["id"])
        status, body = live_service.post(f"/jobs/{job['id']}/cancel")
        assert status == 409
        assert "already done" in body["error"]


def stream_with_epoch(service, path):
    """Like LiveService.stream but also returns the stream-epoch header."""
    import json
    import urllib.request

    request = urllib.request.Request(service.base + path)
    with urllib.request.urlopen(request, timeout=30.0) as response:
        epoch = response.headers.get("X-Repro-Stream-Epoch")
        events = [json.loads(line) for line in response if line.strip()]
    return events, epoch


class TestResumableStream:
    """seq numbering + ?since/?epoch replay for reconnecting watchers."""

    def test_events_carry_monotonic_seq(self, live_service):
        _status, job = live_service.post("/jobs", micro_sweep_spec((4, 5)))
        _final, events = live_service.wait_for(job["id"])
        assert [e["seq"] for e in events] == list(range(1, len(events) + 1))

    def test_epoch_header_identifies_the_server_process(self, live_service):
        _status, job = live_service.post("/jobs", micro_scenario_spec())
        live_service.wait_for(job["id"])
        _events, epoch = stream_with_epoch(
            live_service, f"/jobs/{job['id']}/events"
        )
        assert epoch == live_service.service.epoch
        assert epoch  # non-empty opaque token

    def test_since_with_matching_epoch_skips_seen_events(self, live_service):
        _status, job = live_service.post("/jobs", micro_sweep_spec((4, 5)))
        _final, events = live_service.wait_for(job["id"])
        cut = events[1]["seq"]  # pretend we disconnected after two events
        resumed, _epoch = stream_with_epoch(
            live_service,
            f"/jobs/{job['id']}/events"
            f"?since={cut}&epoch={live_service.service.epoch}",
        )
        assert resumed == events[cut:]

    def test_stale_epoch_replays_everything(self, live_service):
        """After a restart seq numbers restart too; 'since' is meaningless."""
        _status, job = live_service.post("/jobs", micro_sweep_spec((4, 5)))
        _final, events = live_service.wait_for(job["id"])
        replayed, _epoch = stream_with_epoch(
            live_service,
            f"/jobs/{job['id']}/events?since={len(events)}&epoch=deadbeef",
        )
        assert replayed == events

    def test_since_past_the_end_of_a_done_job_resends_the_terminal(
        self, live_service
    ):
        # A watcher that saw everything but whose connection tore right
        # at the terminal event must not hang: the stream re-sends the
        # final event and closes.
        _status, job = live_service.post("/jobs", micro_scenario_spec())
        _final, events = live_service.wait_for(job["id"])
        tail, _epoch = stream_with_epoch(
            live_service,
            f"/jobs/{job['id']}/events"
            f"?since={len(events)}&epoch={live_service.service.epoch}",
        )
        assert tail == [events[-1]]
        assert tail[0]["state"] == "done"

    def test_bad_since_is_400(self, live_service):
        _status, job = live_service.post("/jobs", micro_scenario_spec())
        live_service.wait_for(job["id"])
        for bad in ("abc", "-1"):
            status, body = live_service.get(
                f"/jobs/{job['id']}/events?since={bad}"
            )
            assert status == 400
            assert "since" in body["error"]


class TestCampaignOverHttp:
    def test_campaign_job_streams_trials_and_returns_rows(self, tmp_path):
        service = LiveService(tmp_path / "data", execute=fake_campaign_execute)
        try:
            spec = {
                "kind": "campaign",
                "scale": "tiny",
                "stripe_sizes": [4, 6],
                "trials": 2,
                "seed": 11,
                "mission_hours": 3.0,
            }
            _status, job = service.post("/jobs", spec)
            final, events = service.wait_for(job["id"])
            assert final["state"] == "done"
            trials = [e for e in events if e["event"] == "trial"]
            assert [t["index"] for t in trials] == [0, 1, 2, 3]
            assert all(t["metrics"] is None for t in trials)  # fakes carry none
            _status, body = service.get(f"/jobs/{job['id']}/result")
            result = body["result"]
            assert result["kind"] == "campaign"
            assert [row["g"] for row in result["rows"]] == [4, 6]
            assert result["sweep"]["executed"] == 4
            # Checkpoint sidecar exists and is complete.
            checkpoint = service.service.store.checkpoint_path(job["id"])
            assert checkpoint.exists()
        finally:
            service.stop()
