"""Tests for job-spec validation, normalization, and content addressing."""

import dataclasses

import pytest

from repro.experiments.campaign import campaign_spec
from repro.experiments.runner import ScenarioConfig
from repro.service.spec import (
    MAX_POINTS,
    SpecError,
    parse_spec,
    spec_from_normalized,
)

from tests.service.conftest import micro_scenario_spec, micro_sweep_spec
from tests.sweep.conftest import MICRO, micro_spec_base


class TestScenario:
    def test_round_trips_one_config(self):
        raw = micro_scenario_spec()
        spec = parse_spec(raw)
        assert spec.kind == "scenario"
        assert len(spec.configs) == 1
        assert spec.configs[0].to_key() == raw["config"]
        assert spec.campaign is None

    def test_normalized_document_rebuilds(self):
        spec = parse_spec(micro_scenario_spec())
        rebuilt = spec_from_normalized(spec.document)
        assert rebuilt.kind == spec.kind
        assert rebuilt.configs == spec.configs
        assert rebuilt.job_id() == spec.job_id()


class TestSweep:
    def test_row_major_enumeration(self):
        base = micro_spec_base()
        base["scale"] = dataclasses.asdict(MICRO)
        raw = {
            "kind": "sweep",
            "axes": [["stripe_size", [4, 5]], ["seed", [1, 2]]],
            "base": {k: v for k, v in base.items() if k != "seed"},
        }
        spec = parse_spec(raw)
        assert [(c.stripe_size, c.seed) for c in spec.configs] == [
            (4, 1), (4, 2), (5, 1), (5, 2),
        ]

    def test_identical_work_is_one_job_id(self):
        # Base-field dict ordering must not change the content address.
        a = micro_sweep_spec()
        b = dict(a, base=dict(reversed(list(a["base"].items()))))
        assert parse_spec(a).job_id() == parse_spec(b).job_id()

    def test_different_work_is_a_different_job_id(self):
        assert (
            parse_spec(micro_sweep_spec((4, 5))).job_id()
            != parse_spec(micro_sweep_spec((4, 6))).job_id()
        )

    def test_point_limit(self):
        raw = micro_sweep_spec()
        raw["base"].pop("seed")
        raw["axes"] = [["seed", list(range(MAX_POINTS + 1))]]
        with pytest.raises(SpecError, match="limit"):
            parse_spec(raw)


class TestCampaign:
    def test_grid_matches_the_cli_campaign(self):
        raw = {
            "kind": "campaign",
            "scale": "tiny",
            "stripe_sizes": [4, 6],
            "trials": 2,
            "seed": 11,
            "mission_hours": 3.0,
        }
        spec = parse_spec(raw)
        grid = campaign_spec(
            "tiny", stripe_sizes=[4, 6], seed=11, trials=2, mission_hours=3.0
        )
        assert spec.configs == grid.configs()
        assert spec.campaign == {
            "trials": 2,
            "mission_hours": 3.0,
            "stripe_sizes": [4, 6],
            "seed": 11,
            "syndromes": 1,
        }

    def test_defaults_come_from_the_scale(self):
        spec = parse_spec({"kind": "campaign", "scale": "tiny"})
        assert spec.campaign["trials"] == 3  # TRIALS["tiny"]
        assert len(spec.configs) == 4 * 3  # stripe sizes x trials

    def test_normalized_document_rebuilds(self):
        spec = parse_spec({"kind": "campaign", "scale": "tiny", "trials": 1})
        rebuilt = spec_from_normalized(spec.document)
        assert rebuilt.campaign == spec.campaign
        assert rebuilt.configs == spec.configs

    def test_dual_syndrome_campaign(self):
        from repro.experiments.campaign import CAMPAIGN_PQ_STRIPE_SIZES

        spec = parse_spec(
            {"kind": "campaign", "scale": "tiny", "trials": 1, "syndromes": 2}
        )
        assert spec.campaign["syndromes"] == 2
        # The default grid switches to the dual-capable stripe sizes.
        assert spec.campaign["stripe_sizes"] == list(CAMPAIGN_PQ_STRIPE_SIZES)
        assert all(config.syndromes == 2 for config in spec.configs)
        single = parse_spec({"kind": "campaign", "scale": "tiny", "trials": 1})
        assert spec.job_id() != single.job_id()

    def test_invalid_syndromes_rejected(self):
        with pytest.raises(SpecError, match="syndromes"):
            parse_spec({"kind": "campaign", "scale": "tiny", "syndromes": 3})
        with pytest.raises(SpecError, match="syndromes"):
            parse_spec({"kind": "campaign", "scale": "tiny", "syndromes": True})


MALFORMED = [
    pytest.param("not a dict", "JSON object", id="non-object"),
    pytest.param({}, "kind", id="no-kind"),
    pytest.param({"kind": "bogus"}, "kind", id="unknown-kind"),
    pytest.param({"kind": "scenario"}, "scenario config", id="scenario-no-config"),
    pytest.param(
        {"kind": "scenario", "config": {"stripe_size": 4, "bogus_field": 1}},
        "invalid scenario config",
        id="scenario-bad-field",
    ),
    pytest.param({"kind": "sweep"}, "axes", id="sweep-no-axes"),
    pytest.param({"kind": "sweep", "axes": [["g"]]}, "pair", id="sweep-bad-axis"),
    pytest.param(
        {"kind": "sweep", "axes": [["stripe_size", []]]},
        "non-empty",
        id="sweep-empty-values",
    ),
    pytest.param(
        {"kind": "sweep", "axes": [["stripe_size", [4]], ["stripe_size", [5]]]},
        "twice",
        id="sweep-duplicate-axis",
    ),
    pytest.param(
        {
            "kind": "sweep",
            "axes": [["stripe_size", [4]]],
            "base": {"stripe_size": 5},
        },
        "both an axis and a base field",
        id="sweep-axis-base-overlap",
    ),
    pytest.param({"kind": "campaign", "scale": "galactic"}, "scale", id="campaign-bad-scale"),
    pytest.param(
        {"kind": "campaign", "stripe_sizes": []}, "stripe_sizes", id="campaign-empty-sizes"
    ),
    pytest.param(
        {"kind": "campaign", "trials": 0}, "trials", id="campaign-zero-trials"
    ),
    pytest.param(
        {"kind": "campaign", "seed": "yes"}, "seed", id="campaign-bad-seed"
    ),
    pytest.param(
        {"kind": "campaign", "mission_hours": -1}, "mission_hours",
        id="campaign-bad-mission",
    ),
]


@pytest.mark.parametrize("raw, needle", MALFORMED)
def test_malformed_specs_raise_spec_error(raw, needle):
    with pytest.raises(SpecError, match=needle):
        parse_spec(raw)


def test_spec_error_messages_are_human_readable():
    with pytest.raises(SpecError) as info:
        parse_spec({"kind": "scenario", "config": {"stripe_size": "four"}})
    assert "scenario config" in str(info.value)
