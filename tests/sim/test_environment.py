"""Unit tests for the environment's run loop."""

import pytest

from repro.sim import Environment, SimulationError


class TestRunModes:
    def test_run_until_empty(self):
        env = Environment()
        env.timeout(3.0)
        env.run()
        assert env.now == 3.0

    def test_run_until_time_stops_clock_there(self):
        env = Environment()
        env.timeout(10.0)
        env.run(until=4.0)
        assert env.now == 4.0

    def test_run_until_time_processes_earlier_events(self):
        env = Environment()
        fired = []
        t = env.timeout(2.0)
        t.callbacks.append(lambda e: fired.append(True))
        env.run(until=5.0)
        assert fired == [True]

    def test_run_until_event_returns_value(self):
        env = Environment()

        def body(env):
            yield env.timeout(2.0)
            return "finished"

        process = env.process(body(env))
        assert env.run(until=process) == "finished"
        assert env.now == 2.0

    def test_run_until_past_raises(self):
        env = Environment()
        env.timeout(5.0)
        env.run(until=5.0)
        with pytest.raises(SimulationError):
            env.run(until=1.0)

    def test_run_until_unreachable_event_raises(self):
        env = Environment()
        orphan = env.event()  # never succeeded
        with pytest.raises(SimulationError, match="drained"):
            env.run(until=orphan)

    def test_step_on_empty_raises(self):
        env = Environment()
        with pytest.raises(SimulationError):
            env.step()

    def test_peek(self):
        env = Environment()
        assert env.peek() == float("inf")
        env.timeout(7.0)
        assert env.peek() == 7.0

    def test_initial_time(self):
        env = Environment(initial_time=100.0)
        env.timeout(1.0)
        env.run()
        assert env.now == 101.0

    def test_schedule_negative_delay_rejected(self):
        env = Environment()
        event = env.event()
        event._state = 1  # pretend triggered; schedule directly
        with pytest.raises(SimulationError):
            env.schedule(event, delay=-0.5)

    def test_resuming_run_continues(self):
        env = Environment()
        log = []

        def body(env):
            for _ in range(3):
                yield env.timeout(10.0)
                log.append(env.now)

        env.process(body(env))
        env.run(until=15.0)
        assert log == [10.0]
        env.run()
        assert log == [10.0, 20.0, 30.0]


class TestConditions:
    def test_all_of_waits_for_all(self):
        env = Environment()

        def body(env):
            yield env.all_of([env.timeout(1.0), env.timeout(5.0), env.timeout(3.0)])
            return env.now

        process = env.process(body(env))
        assert env.run(until=process) == 5.0

    def test_any_of_fires_on_first(self):
        env = Environment()

        def body(env):
            yield env.any_of([env.timeout(4.0), env.timeout(2.0)])
            return env.now

        process = env.process(body(env))
        assert env.run(until=process) == 2.0

    def test_all_of_empty_fires_immediately(self):
        env = Environment()

        def body(env):
            yield env.all_of([])
            return env.now

        process = env.process(body(env))
        assert env.run(until=process) == 0.0

    def test_all_of_collects_values(self):
        env = Environment()
        first = env.timeout(1.0, value="a")
        second = env.timeout(2.0, value="b")

        def body(env):
            values = yield env.all_of([first, second])
            return sorted(values.values())

        process = env.process(body(env))
        assert env.run(until=process) == ["a", "b"]

    def test_all_of_with_already_processed_event(self):
        env = Environment()
        early = env.timeout(1.0)
        env.run()  # early is processed

        def body(env):
            yield env.all_of([early, env.timeout(2.0)])
            return env.now

        process = env.process(body(env))
        assert env.run(until=process) == 3.0

    def test_failing_child_fails_condition(self):
        env = Environment()

        def failing(env):
            yield env.timeout(1.0)
            raise RuntimeError("child died")

        def body(env):
            try:
                yield env.all_of([env.process(failing(env)), env.timeout(100.0)])
            except RuntimeError as exc:
                return f"caught: {exc}"

        process = env.process(body(env))
        assert env.run(until=process) == "caught: child died"

    def test_condition_rejects_foreign_events(self):
        env_a, env_b = Environment(), Environment()
        with pytest.raises(SimulationError):
            env_a.all_of([env_b.timeout(1.0)])
