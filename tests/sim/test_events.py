"""Unit tests for the event primitives."""

import pytest

from repro.sim import Environment, SimulationError
from repro.sim.events import Timeout


class TestEventLifecycle:
    def test_new_event_is_pending(self):
        env = Environment()
        event = env.event()
        assert not event.triggered
        assert not event.processed

    def test_succeed_delivers_value(self):
        env = Environment()
        event = env.event()
        event.succeed(42)
        assert event.triggered
        assert event.value == 42

    def test_succeed_default_value_is_none(self):
        env = Environment()
        event = env.event()
        event.succeed()
        assert event.value is None

    def test_value_before_trigger_raises(self):
        env = Environment()
        event = env.event()
        with pytest.raises(SimulationError):
            _ = event.value

    def test_double_succeed_raises(self):
        env = Environment()
        event = env.event()
        event.succeed(1)
        with pytest.raises(SimulationError):
            event.succeed(2)

    def test_fail_then_succeed_raises(self):
        env = Environment()
        event = env.event()
        event.fail(RuntimeError("boom"))
        event.defused = True
        with pytest.raises(SimulationError):
            event.succeed()

    def test_fail_requires_exception(self):
        env = Environment()
        event = env.event()
        with pytest.raises(SimulationError):
            event.fail("not an exception")

    def test_failed_event_value_raises_original(self):
        env = Environment()
        event = env.event()
        event.fail(ValueError("original"))
        event.defused = True
        with pytest.raises(ValueError, match="original"):
            _ = event.value

    def test_ok_reflects_outcome(self):
        env = Environment()
        good, bad = env.event(), env.event()
        good.succeed()
        bad.fail(RuntimeError())
        bad.defused = True
        assert good.ok
        assert not bad.ok

    def test_callbacks_run_at_dispatch(self):
        env = Environment()
        event = env.event()
        seen = []
        event.callbacks.append(lambda e: seen.append(e.value))
        event.succeed("payload")
        assert seen == []  # not yet dispatched
        env.run()
        assert seen == ["payload"]

    def test_unhandled_failure_surfaces_in_run(self):
        env = Environment()
        event = env.event()
        event.fail(RuntimeError("unhandled"))
        with pytest.raises(RuntimeError, match="unhandled"):
            env.run()


class TestTimeout:
    def test_timeout_fires_after_delay(self):
        env = Environment()
        timeout = env.timeout(5.0, value="done")
        env.run()
        assert env.now == 5.0
        assert timeout.value == "done"

    def test_negative_delay_rejected(self):
        env = Environment()
        with pytest.raises(SimulationError):
            Timeout(env, -1.0)

    def test_zero_delay_fires_immediately(self):
        env = Environment()
        env.timeout(0.0)
        env.run()
        assert env.now == 0.0

    def test_timeouts_fire_in_order(self):
        env = Environment()
        order = []
        for delay in (3.0, 1.0, 2.0):
            t = env.timeout(delay)
            t.callbacks.append(lambda e, d=delay: order.append(d))
        env.run()
        assert order == [1.0, 2.0, 3.0]

    def test_equal_time_fifo_order(self):
        env = Environment()
        order = []
        for tag in range(5):
            t = env.timeout(1.0)
            t.callbacks.append(lambda e, tag=tag: order.append(tag))
        env.run()
        assert order == [0, 1, 2, 3, 4]


class TestLazyCallbackContract:
    """Events are born with no callback list; the public ``callbacks``
    property materializes it on demand and returns ``None`` once the
    event has been dispatched."""

    def test_fresh_event_has_no_list_until_read(self):
        env = Environment()
        event = env.event()
        assert event._callbacks is None  # lazy: no allocation yet
        cbs = event.callbacks
        assert cbs == [] and event.callbacks is cbs  # materialized once

    def test_append_via_property_still_fires(self):
        env = Environment()
        event = env.event()
        fired = []
        event.callbacks.append(fired.append)
        event.succeed(7)
        env.run()
        assert [e.value for e in fired] == [7]

    def test_callbacks_none_after_dispatch(self):
        env = Environment()
        event = env.event()
        event.succeed()
        env.run()
        assert event.callbacks is None
        with pytest.raises(AttributeError):
            event.callbacks.append(lambda e: None)

    def test_defused_defaults_false_and_is_settable(self):
        env = Environment()
        event = env.event()
        assert event.defused is False
        event.defused = True
        assert event.defused is True

    def test_predefused_failure_does_not_raise_at_dispatch(self):
        env = Environment()
        event = env.event()
        event.fail(RuntimeError("handled elsewhere"))
        event.defused = True
        env.run()  # would raise if the defused flag were lost
        assert event.processed
