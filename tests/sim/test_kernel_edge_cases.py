"""Edge cases in the kernel that the array stack depends on."""

import pytest

from repro.sim import Environment, Interrupt, SimulationError, Store


class TestConditionEdges:
    def test_any_of_ignores_later_children(self):
        env = Environment()
        late_fired = []
        late = env.timeout(10.0)
        late.callbacks.append(lambda e: late_fired.append(True))

        def body(env):
            yield env.any_of([env.timeout(1.0), late])
            return env.now

        process = env.process(body(env))
        assert env.run(until=process) == 1.0
        env.run()  # the late child still fires harmlessly
        assert late_fired == [True]

    def test_any_of_with_failing_first_child(self):
        env = Environment()

        def failing(env):
            yield env.timeout(1.0)
            raise RuntimeError("early death")

        def body(env):
            try:
                yield env.any_of([env.process(failing(env)), env.timeout(5.0)])
            except RuntimeError:
                return "caught"

        process = env.process(body(env))
        assert env.run(until=process) == "caught"

    def test_nested_conditions(self):
        env = Environment()

        def body(env):
            inner = env.all_of([env.timeout(1.0), env.timeout(2.0)])
            yield env.all_of([inner, env.timeout(3.0)])
            return env.now

        process = env.process(body(env))
        assert env.run(until=process) == 3.0

    def test_condition_over_condition_values(self):
        env = Environment()

        def body(env):
            first = env.timeout(1.0, value="a")
            both = yield env.all_of([first, env.timeout(2.0, value="b")])
            return set(both.values())

        process = env.process(body(env))
        assert env.run(until=process) == {"a", "b"}


class TestInterruptEdges:
    def test_interrupt_while_waiting_on_condition(self):
        env = Environment()
        outcome = []

        def sleeper(env):
            try:
                yield env.all_of([env.timeout(100.0), env.timeout(200.0)])
            except Interrupt:
                outcome.append(env.now)

        process = env.process(sleeper(env))

        def interrupter(env):
            yield env.timeout(5.0)
            process.interrupt()

        env.process(interrupter(env))
        env.run()
        assert outcome == [5.0]

    def test_process_can_continue_after_interrupt(self):
        env = Environment()
        log = []

        def resilient(env):
            try:
                yield env.timeout(100.0)
            except Interrupt:
                log.append("interrupted")
            yield env.timeout(1.0)
            log.append(env.now)

        process = env.process(resilient(env))

        def interrupter(env):
            yield env.timeout(2.0)
            process.interrupt()

        env.process(interrupter(env))
        env.run()
        assert log == ["interrupted", 3.0]


class TestStoreEdges:
    def test_cancelled_getter_is_skipped(self):
        env = Environment()
        store = Store(env)
        abandoned = store.get()
        abandoned.succeed("cancelled-by-user-code")  # caller gave up
        received = []

        def consumer(env):
            item = yield store.get()
            received.append(item)

        env.process(consumer(env))

        def producer(env):
            yield env.timeout(1.0)
            store.put("real-item")

        env.process(producer(env))
        env.run()
        assert received == ["real-item"]

    def test_put_then_many_gets(self):
        env = Environment()
        store = Store(env)
        for i in range(3):
            store.put(i)
        got = []

        def consumer(env):
            while True:
                if len(store) == 0:
                    return
                item = yield store.get()
                got.append(item)

        env.process(consumer(env))
        env.run()
        assert got == [0, 1, 2]


class TestSchedulingDiscipline:
    def test_zero_delay_events_run_before_later_ones(self):
        env = Environment()
        order = []

        def body(env):
            order.append("start")
            yield env.timeout(0.0)
            order.append("after-zero")
            yield env.timeout(1.0)
            order.append("after-one")

        env.process(body(env))
        t = env.timeout(0.5)
        t.callbacks.append(lambda e: order.append("half"))
        env.run()
        assert order == ["start", "after-zero", "half", "after-one"]

    def test_failed_event_not_consumed_raises_at_step(self):
        env = Environment()
        env.event().fail(ValueError("nobody listening"))
        with pytest.raises(ValueError):
            env.run()


class TestAnyOfFailureDefusing:
    def test_failing_child_is_defused_and_fails_the_condition(self):
        env = Environment()
        doomed = env.event()

        def bomber(env):
            yield env.timeout(1.0)
            doomed.fail(RuntimeError("child blew up"))

        outcome = []

        def waiter(env):
            try:
                yield env.any_of([doomed, env.timeout(5.0)])
            except RuntimeError as error:
                outcome.append((env.now, str(error)))

        env.process(bomber(env))
        env.process(waiter(env))
        env.run()
        assert outcome == [(1.0, "child blew up")]
        # The losing child was defused when the condition consumed its
        # failure, so the kernel did not re-raise it at dispatch.
        assert doomed.defused

    def test_all_of_failing_child_defuses_too(self):
        env = Environment()
        doomed = env.event()
        caught = []

        def waiter(env):
            try:
                yield env.all_of([env.timeout(1.0), doomed])
            except KeyError:
                caught.append(env.now)

        env.process(waiter(env))
        doomed.fail(KeyError("lost"))
        env.run()
        assert caught == [0.0]
        assert doomed.defused


class TestAllOfZeroEvents:
    def test_fires_immediately_at_current_sim_time(self):
        env = Environment()
        seen = []

        def body(env):
            yield env.timeout(3.5)
            result = yield env.all_of([])
            seen.append((env.now, result))

        env.process(body(env))
        env.run()
        # The empty join fires on the same tick it was created, with an
        # empty value dict — no time may pass.
        assert seen == [(3.5, {})]

    def test_empty_all_of_is_already_triggered(self):
        env = Environment()
        join = env.all_of([])
        assert join.triggered and not join.processed
        env.run()
        assert join.processed and join.value == {}


class TestSameInstantTimeoutFIFO:
    @pytest.mark.parametrize("delay", [0.0, 1.0])
    def test_fifo_across_100_seeded_shuffles(self, delay):
        # Same-instant timeouts must dispatch in creation order no
        # matter what order the creating code enumerates them in —
        # delay 0.0 exercises the immediate lane, 1.0 the heap.
        import random

        for seed in range(100):
            env = Environment()
            tags = list(range(20))
            random.Random(seed).shuffle(tags)
            order = []
            for tag in tags:
                t = env.timeout(delay)
                t.callbacks.append(lambda e, tag=tag: order.append(tag))
            env.run()
            assert order == tags, f"seed {seed} broke FIFO order"


class TestClosedEnvironment:
    def test_timeout_on_closed_env_raises(self):
        env = Environment()
        env.close()
        # Both the heap path (positive delay) and the immediate lane
        # (zero delay) bypass Environment.schedule, so each replicates
        # the closed guard; this is the double-schedule regression
        # fix's contract.
        with pytest.raises(SimulationError):
            env.timeout(1.0)
        with pytest.raises(SimulationError):
            env.timeout(0.0)

    def test_succeed_fail_schedule_process_on_closed_env_raise(self):
        env = Environment()
        pending = env.event()
        env.close()
        with pytest.raises(SimulationError):
            pending.succeed()
        with pytest.raises(SimulationError):
            env.event().fail(RuntimeError("late"))
        with pytest.raises(SimulationError):
            env.schedule(env.event())

        def body(env):
            yield env.timeout(1.0)

        with pytest.raises(SimulationError):
            env.process(body(env))

    def test_close_drops_pending_events(self):
        env = Environment()
        fired = []
        t = env.timeout(5.0)
        t.callbacks.append(lambda e: fired.append(e))
        env.run(until=2.0)
        env.close()
        env.run()  # schedule is empty; nothing fires
        assert fired == []
        assert env.closed
        assert env.peek() == float("inf")

    def test_timeout_is_born_triggered_so_succeed_is_double_schedule(self):
        # A live Timeout enters the schedule in __init__; a second
        # trigger would enqueue it twice. succeed() must refuse.
        env = Environment()
        t = env.timeout(1.0)
        with pytest.raises(SimulationError):
            t.succeed()
        env.run()
        assert t.processed
