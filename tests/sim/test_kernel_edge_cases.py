"""Edge cases in the kernel that the array stack depends on."""

import pytest

from repro.sim import Environment, Interrupt, Store


class TestConditionEdges:
    def test_any_of_ignores_later_children(self):
        env = Environment()
        late_fired = []
        late = env.timeout(10.0)
        late.callbacks.append(lambda e: late_fired.append(True))

        def body(env):
            yield env.any_of([env.timeout(1.0), late])
            return env.now

        process = env.process(body(env))
        assert env.run(until=process) == 1.0
        env.run()  # the late child still fires harmlessly
        assert late_fired == [True]

    def test_any_of_with_failing_first_child(self):
        env = Environment()

        def failing(env):
            yield env.timeout(1.0)
            raise RuntimeError("early death")

        def body(env):
            try:
                yield env.any_of([env.process(failing(env)), env.timeout(5.0)])
            except RuntimeError:
                return "caught"

        process = env.process(body(env))
        assert env.run(until=process) == "caught"

    def test_nested_conditions(self):
        env = Environment()

        def body(env):
            inner = env.all_of([env.timeout(1.0), env.timeout(2.0)])
            yield env.all_of([inner, env.timeout(3.0)])
            return env.now

        process = env.process(body(env))
        assert env.run(until=process) == 3.0

    def test_condition_over_condition_values(self):
        env = Environment()

        def body(env):
            first = env.timeout(1.0, value="a")
            both = yield env.all_of([first, env.timeout(2.0, value="b")])
            return set(both.values())

        process = env.process(body(env))
        assert env.run(until=process) == {"a", "b"}


class TestInterruptEdges:
    def test_interrupt_while_waiting_on_condition(self):
        env = Environment()
        outcome = []

        def sleeper(env):
            try:
                yield env.all_of([env.timeout(100.0), env.timeout(200.0)])
            except Interrupt:
                outcome.append(env.now)

        process = env.process(sleeper(env))

        def interrupter(env):
            yield env.timeout(5.0)
            process.interrupt()

        env.process(interrupter(env))
        env.run()
        assert outcome == [5.0]

    def test_process_can_continue_after_interrupt(self):
        env = Environment()
        log = []

        def resilient(env):
            try:
                yield env.timeout(100.0)
            except Interrupt:
                log.append("interrupted")
            yield env.timeout(1.0)
            log.append(env.now)

        process = env.process(resilient(env))

        def interrupter(env):
            yield env.timeout(2.0)
            process.interrupt()

        env.process(interrupter(env))
        env.run()
        assert log == ["interrupted", 3.0]


class TestStoreEdges:
    def test_cancelled_getter_is_skipped(self):
        env = Environment()
        store = Store(env)
        abandoned = store.get()
        abandoned.succeed("cancelled-by-user-code")  # caller gave up
        received = []

        def consumer(env):
            item = yield store.get()
            received.append(item)

        env.process(consumer(env))

        def producer(env):
            yield env.timeout(1.0)
            store.put("real-item")

        env.process(producer(env))
        env.run()
        assert received == ["real-item"]

    def test_put_then_many_gets(self):
        env = Environment()
        store = Store(env)
        for i in range(3):
            store.put(i)
        got = []

        def consumer(env):
            while True:
                if len(store) == 0:
                    return
                item = yield store.get()
                got.append(item)

        env.process(consumer(env))
        env.run()
        assert got == [0, 1, 2]


class TestSchedulingDiscipline:
    def test_zero_delay_events_run_before_later_ones(self):
        env = Environment()
        order = []

        def body(env):
            order.append("start")
            yield env.timeout(0.0)
            order.append("after-zero")
            yield env.timeout(1.0)
            order.append("after-one")

        env.process(body(env))
        t = env.timeout(0.5)
        t.callbacks.append(lambda e: order.append("half"))
        env.run()
        assert order == ["start", "after-zero", "half", "after-one"]

    def test_failed_event_not_consumed_raises_at_step(self):
        env = Environment()
        env.event().fail(ValueError("nobody listening"))
        with pytest.raises(ValueError):
            env.run()
