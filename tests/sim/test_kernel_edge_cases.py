"""Edge cases in the kernel that the array stack depends on."""

import pytest

from repro.sim import Environment, Interrupt, SimulationError, Store


class TestConditionEdges:
    def test_any_of_ignores_later_children(self):
        env = Environment()
        late_fired = []
        late = env.timeout(10.0)
        late.callbacks.append(lambda e: late_fired.append(True))

        def body(env):
            yield env.any_of([env.timeout(1.0), late])
            return env.now

        process = env.process(body(env))
        assert env.run(until=process) == 1.0
        env.run()  # the late child still fires harmlessly
        assert late_fired == [True]

    def test_any_of_with_failing_first_child(self):
        env = Environment()

        def failing(env):
            yield env.timeout(1.0)
            raise RuntimeError("early death")

        def body(env):
            try:
                yield env.any_of([env.process(failing(env)), env.timeout(5.0)])
            except RuntimeError:
                return "caught"

        process = env.process(body(env))
        assert env.run(until=process) == "caught"

    def test_nested_conditions(self):
        env = Environment()

        def body(env):
            inner = env.all_of([env.timeout(1.0), env.timeout(2.0)])
            yield env.all_of([inner, env.timeout(3.0)])
            return env.now

        process = env.process(body(env))
        assert env.run(until=process) == 3.0

    def test_condition_over_condition_values(self):
        env = Environment()

        def body(env):
            first = env.timeout(1.0, value="a")
            both = yield env.all_of([first, env.timeout(2.0, value="b")])
            return set(both.values())

        process = env.process(body(env))
        assert env.run(until=process) == {"a", "b"}


class TestInterruptEdges:
    def test_interrupt_while_waiting_on_condition(self):
        env = Environment()
        outcome = []

        def sleeper(env):
            try:
                yield env.all_of([env.timeout(100.0), env.timeout(200.0)])
            except Interrupt:
                outcome.append(env.now)

        process = env.process(sleeper(env))

        def interrupter(env):
            yield env.timeout(5.0)
            process.interrupt()

        env.process(interrupter(env))
        env.run()
        assert outcome == [5.0]

    def test_process_can_continue_after_interrupt(self):
        env = Environment()
        log = []

        def resilient(env):
            try:
                yield env.timeout(100.0)
            except Interrupt:
                log.append("interrupted")
            yield env.timeout(1.0)
            log.append(env.now)

        process = env.process(resilient(env))

        def interrupter(env):
            yield env.timeout(2.0)
            process.interrupt()

        env.process(interrupter(env))
        env.run()
        assert log == ["interrupted", 3.0]


class TestStoreEdges:
    def test_cancelled_getter_is_skipped(self):
        env = Environment()
        store = Store(env)
        abandoned = store.get()
        abandoned.succeed("cancelled-by-user-code")  # caller gave up
        received = []

        def consumer(env):
            item = yield store.get()
            received.append(item)

        env.process(consumer(env))

        def producer(env):
            yield env.timeout(1.0)
            store.put("real-item")

        env.process(producer(env))
        env.run()
        assert received == ["real-item"]

    def test_put_then_many_gets(self):
        env = Environment()
        store = Store(env)
        for i in range(3):
            store.put(i)
        got = []

        def consumer(env):
            while True:
                if len(store) == 0:
                    return
                item = yield store.get()
                got.append(item)

        env.process(consumer(env))
        env.run()
        assert got == [0, 1, 2]


class TestSchedulingDiscipline:
    def test_zero_delay_events_run_before_later_ones(self):
        env = Environment()
        order = []

        def body(env):
            order.append("start")
            yield env.timeout(0.0)
            order.append("after-zero")
            yield env.timeout(1.0)
            order.append("after-one")

        env.process(body(env))
        t = env.timeout(0.5)
        t.callbacks.append(lambda e: order.append("half"))
        env.run()
        assert order == ["start", "after-zero", "half", "after-one"]

    def test_failed_event_not_consumed_raises_at_step(self):
        env = Environment()
        env.event().fail(ValueError("nobody listening"))
        with pytest.raises(ValueError):
            env.run()


class TestAnyOfFailureDefusing:
    def test_failing_child_is_defused_and_fails_the_condition(self):
        env = Environment()
        doomed = env.event()

        def bomber(env):
            yield env.timeout(1.0)
            doomed.fail(RuntimeError("child blew up"))

        outcome = []

        def waiter(env):
            try:
                yield env.any_of([doomed, env.timeout(5.0)])
            except RuntimeError as error:
                outcome.append((env.now, str(error)))

        env.process(bomber(env))
        env.process(waiter(env))
        env.run()
        assert outcome == [(1.0, "child blew up")]
        # The losing child was defused when the condition consumed its
        # failure, so the kernel did not re-raise it at dispatch.
        assert doomed.defused

    def test_all_of_failing_child_defuses_too(self):
        env = Environment()
        doomed = env.event()
        caught = []

        def waiter(env):
            try:
                yield env.all_of([env.timeout(1.0), doomed])
            except KeyError:
                caught.append(env.now)

        env.process(waiter(env))
        doomed.fail(KeyError("lost"))
        env.run()
        assert caught == [0.0]
        assert doomed.defused


class TestAllOfZeroEvents:
    def test_fires_immediately_at_current_sim_time(self):
        env = Environment()
        seen = []

        def body(env):
            yield env.timeout(3.5)
            result = yield env.all_of([])
            seen.append((env.now, result))

        env.process(body(env))
        env.run()
        # The empty join fires on the same tick it was created, with an
        # empty value dict — no time may pass.
        assert seen == [(3.5, {})]

    def test_empty_all_of_is_already_triggered(self):
        env = Environment()
        join = env.all_of([])
        assert join.triggered and not join.processed
        env.run()
        assert join.processed and join.value == {}


class TestSameInstantTimeoutFIFO:
    @pytest.mark.parametrize("delay", [0.0, 1.0])
    def test_fifo_across_100_seeded_shuffles(self, delay):
        # Same-instant timeouts must dispatch in creation order no
        # matter what order the creating code enumerates them in —
        # delay 0.0 exercises the immediate lane, 1.0 the heap.
        import random

        for seed in range(100):
            env = Environment()
            tags = list(range(20))
            random.Random(seed).shuffle(tags)
            order = []
            for tag in tags:
                t = env.timeout(delay)
                t.callbacks.append(lambda e, tag=tag: order.append(tag))
            env.run()
            assert order == tags, f"seed {seed} broke FIFO order"

    def test_fifo_across_100_seeded_shuffles_mixed_lanes(self):
        # Both lanes meeting at one instant, plus events created
        # mid-cohort: a driver timeout at t=1 (heap, earliest seq) fires
        # zero-delay timeouts (immediate lane, created AT t=1) while the
        # heap still holds the shuffled t=1 timeouts created up front.
        # The cohort order must be: driver, then the heap members in
        # creation order (their seqs predate reaching t=1), then the
        # zero-delay members in creation order (invariants 1-3 in
        # repro.sim.environment).
        import random

        for seed in range(100):
            rng = random.Random(seed)
            env = Environment()
            order = []

            heap_tags = [f"h{i}" for i in range(10)]
            imm_tags = [f"z{i}" for i in range(10)]
            shuffled_imm = imm_tags[:]
            rng.shuffle(shuffled_imm)

            def fire_immediates(event, tags=tuple(shuffled_imm), env=env):
                order.append("driver")
                for tag in tags:
                    t = env.timeout(0.0)
                    t.callbacks.append(lambda e, tag=tag: order.append(tag))

            driver = env.timeout(1.0)
            driver.callbacks.append(fire_immediates)
            shuffled_heap = heap_tags[:]
            rng.shuffle(shuffled_heap)
            for tag in shuffled_heap:
                t = env.timeout(1.0)
                t.callbacks.append(lambda e, tag=tag: order.append(tag))
            env.run()
            assert order == ["driver"] + shuffled_heap + shuffled_imm, (
                f"seed {seed} broke cohort order"
            )

    def test_merge_path_after_external_step_interleave(self):
        # A manual step() can leave the immediate lane non-empty while
        # the heap still holds entries at `now` — the _merge_instant
        # path. The heap entry (smaller seq) must dispatch first.
        env = Environment()
        order = []
        a = env.timeout(1.0)
        a.callbacks.append(
            lambda e: env.timeout(0.0).callbacks.append(lambda e2: order.append("C"))
        )
        b = env.timeout(1.0)
        b.callbacks.append(lambda e: order.append("B"))
        env.step()  # dispatches A at t=1; C now sits in the immediate lane
        assert env.peek() == 1.0
        env.run()
        assert order == ["B", "C"]


class TestMidCohortControlFlow:
    def _tagged_timeout(self, env, order, tag):
        t = env.timeout(0.0)
        t.callbacks.append(lambda e: order.append(tag))
        return t

    def test_close_mid_cohort_drops_remainder(self):
        env = Environment()
        order = []
        self._tagged_timeout(env, order, 1)
        closer = env.timeout(0.0)
        closer.callbacks.append(lambda e: env.close())
        self._tagged_timeout(env, order, 3)
        self._tagged_timeout(env, order, 4)
        env.run()
        assert order == [1]
        assert env.closed

    def test_exception_mid_cohort_requeues_remainder(self):
        env = Environment()
        order = []
        self._tagged_timeout(env, order, 1)
        boom = env.event()
        boom.fail(RuntimeError("mid-cohort"))
        self._tagged_timeout(env, order, 3)
        self._tagged_timeout(env, order, 4)
        with pytest.raises(RuntimeError, match="mid-cohort"):
            env.run()
        # The undispatched remainder survived the exception and fires,
        # in order, on the next run.
        assert order == [1]
        env.run()
        assert order == [1, 3, 4]

    def test_until_event_mid_cohort_requeues_remainder(self):
        env = Environment()
        order = []
        self._tagged_timeout(env, order, 1)
        target = env.event()
        target.succeed("stop-here")
        self._tagged_timeout(env, order, 3)
        assert env.run(until=target) == "stop-here"
        assert order == [1]
        env.run()
        assert order == [1, 3]


class TestClosedEnvironment:
    def test_timeout_on_closed_env_raises(self):
        env = Environment()
        env.close()
        # Both the heap path (positive delay) and the immediate lane
        # (zero delay) bypass Environment.schedule, so each replicates
        # the closed guard; this is the double-schedule regression
        # fix's contract.
        with pytest.raises(SimulationError):
            env.timeout(1.0)
        with pytest.raises(SimulationError):
            env.timeout(0.0)

    def test_succeed_fail_schedule_process_on_closed_env_raise(self):
        env = Environment()
        pending = env.event()
        env.close()
        with pytest.raises(SimulationError):
            pending.succeed()
        with pytest.raises(SimulationError):
            env.event().fail(RuntimeError("late"))
        with pytest.raises(SimulationError):
            env.schedule(env.event())

        def body(env):
            yield env.timeout(1.0)

        with pytest.raises(SimulationError):
            env.process(body(env))

    def test_close_drops_pending_events(self):
        env = Environment()
        fired = []
        t = env.timeout(5.0)
        t.callbacks.append(lambda e: fired.append(e))
        env.run(until=2.0)
        env.close()
        env.run()  # schedule is empty; nothing fires
        assert fired == []
        assert env.closed
        assert env.peek() == float("inf")

    def test_timeout_is_born_triggered_so_succeed_is_double_schedule(self):
        # A live Timeout enters the schedule in __init__; a second
        # trigger would enqueue it twice. succeed() must refuse.
        env = Environment()
        t = env.timeout(1.0)
        with pytest.raises(SimulationError):
            t.succeed()
        env.run()
        assert t.processed
