"""Unit tests for generator-based processes."""

import pytest

from repro.sim import Environment, Interrupt, SimulationError


class TestProcessBasics:
    def test_process_runs_to_completion(self):
        env = Environment()
        log = []

        def body(env):
            yield env.timeout(1.0)
            log.append(env.now)
            yield env.timeout(2.0)
            log.append(env.now)

        env.process(body(env))
        env.run()
        assert log == [1.0, 3.0]

    def test_process_return_value_is_event_value(self):
        env = Environment()

        def body(env):
            yield env.timeout(1.0)
            return "result"

        process = env.process(body(env))
        assert env.run(until=process) == "result"

    def test_process_receives_event_value(self):
        env = Environment()
        received = []

        def body(env):
            value = yield env.timeout(1.0, value="hello")
            received.append(value)

        env.process(body(env))
        env.run()
        assert received == ["hello"]

    def test_processes_wait_on_each_other(self):
        env = Environment()

        def child(env):
            yield env.timeout(4.0)
            return "child-result"

        def parent(env):
            result = yield env.process(child(env))
            return (env.now, result)

        parent_process = env.process(parent(env))
        assert env.run(until=parent_process) == (4.0, "child-result")

    def test_waiting_on_already_finished_process(self):
        env = Environment()

        def quick(env):
            yield env.timeout(1.0)
            return 7

        quick_process = env.process(quick(env))

        def late(env):
            yield env.timeout(10.0)
            value = yield quick_process
            return value

        late_process = env.process(late(env))
        assert env.run(until=late_process) == 7

    def test_non_generator_rejected(self):
        env = Environment()
        with pytest.raises(SimulationError):
            env.process(lambda: None)

    def test_yielding_non_event_fails_process(self):
        env = Environment()

        def body(env):
            yield 42

        env.process(body(env))
        with pytest.raises(SimulationError, match="not an Event"):
            env.run()

    def test_exception_in_process_propagates(self):
        env = Environment()

        def body(env):
            yield env.timeout(1.0)
            raise ValueError("inside process")

        env.process(body(env))
        with pytest.raises(ValueError, match="inside process"):
            env.run()

    def test_waiter_sees_child_exception(self):
        env = Environment()

        def child(env):
            yield env.timeout(1.0)
            raise ValueError("child error")

        def parent(env):
            try:
                yield env.process(child(env))
            except ValueError as exc:
                return f"caught: {exc}"

        parent_process = env.process(parent(env))
        assert env.run(until=parent_process) == "caught: child error"

    def test_is_alive(self):
        env = Environment()

        def body(env):
            yield env.timeout(5.0)

        process = env.process(body(env))
        assert process.is_alive
        env.run()
        assert not process.is_alive


class TestInterrupt:
    def test_interrupt_wakes_process(self):
        env = Environment()
        outcome = []

        def sleeper(env):
            try:
                yield env.timeout(100.0)
            except Interrupt as interrupt:
                outcome.append((env.now, interrupt.cause))

        sleeper_process = env.process(sleeper(env))

        def interrupter(env):
            yield env.timeout(3.0)
            sleeper_process.interrupt(cause="wake up")

        env.process(interrupter(env))
        env.run()
        assert outcome == [(3.0, "wake up")]

    def test_interrupt_finished_process_raises(self):
        env = Environment()

        def body(env):
            yield env.timeout(1.0)

        process = env.process(body(env))
        env.run()
        with pytest.raises(SimulationError):
            process.interrupt()
