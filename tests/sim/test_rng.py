"""Unit tests for deterministic random streams."""

from repro.sim import RandomStreams


class TestRandomStreams:
    def test_same_seed_same_sequence(self):
        a = RandomStreams(seed=1).stream("arrivals")
        b = RandomStreams(seed=1).stream("arrivals")
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_different_seeds_differ(self):
        a = RandomStreams(seed=1).stream("arrivals")
        b = RandomStreams(seed=2).stream("arrivals")
        assert [a.random() for _ in range(10)] != [b.random() for _ in range(10)]

    def test_streams_are_independent_of_each_other(self):
        streams = RandomStreams(seed=1)
        before = [streams.stream("a").random() for _ in range(5)]
        # Creating and draining another stream must not perturb "a".
        fresh = RandomStreams(seed=1)
        _ = [fresh.stream("b").random() for _ in range(100)]
        after = [fresh.stream("a").random() for _ in range(5)]
        assert before == after

    def test_stream_identity_is_cached(self):
        streams = RandomStreams(seed=3)
        assert streams.stream("x") is streams.stream("x")

    def test_spawn_is_deterministic_and_distinct(self):
        parent = RandomStreams(seed=9)
        child_one = parent.spawn("worker")
        child_two = RandomStreams(seed=9).spawn("worker")
        assert child_one.seed == child_two.seed
        assert child_one.seed != parent.seed
