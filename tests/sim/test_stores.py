"""Unit tests for FIFO stores."""

from repro.sim import Environment, Store


class TestStore:
    def test_get_after_put_is_immediate(self):
        env = Environment()
        store = Store(env)
        store.put("x")

        def body(env):
            item = yield store.get()
            return (env.now, item)

        process = env.process(body(env))
        assert env.run(until=process) == (0.0, "x")

    def test_get_blocks_until_put(self):
        env = Environment()
        store = Store(env)

        def consumer(env):
            item = yield store.get()
            return (env.now, item)

        def producer(env):
            yield env.timeout(5.0)
            store.put("late")

        consumer_process = env.process(consumer(env))
        env.process(producer(env))
        assert env.run(until=consumer_process) == (5.0, "late")

    def test_fifo_item_order(self):
        env = Environment()
        store = Store(env)
        for i in range(4):
            store.put(i)
        received = []

        def body(env):
            for _ in range(4):
                item = yield store.get()
                received.append(item)

        env.process(body(env))
        env.run()
        assert received == [0, 1, 2, 3]

    def test_fifo_getter_order(self):
        env = Environment()
        store = Store(env)
        received = []

        def consumer(env, tag):
            item = yield store.get()
            received.append((tag, item))

        env.process(consumer(env, "first"))
        env.process(consumer(env, "second"))

        def producer(env):
            yield env.timeout(1.0)
            store.put("a")
            yield env.timeout(1.0)
            store.put("b")

        env.process(producer(env))
        env.run()
        assert received == [("first", "a"), ("second", "b")]

    def test_len_and_peek(self):
        env = Environment()
        store = Store(env)
        assert len(store) == 0
        store.put(1)
        store.put(2)
        assert len(store) == 2
        assert store.peek_all() == (1, 2)
        assert len(store) == 2  # peek does not consume
