"""Unit tests for kernel event tracing."""

import pytest

from repro.sim import Environment
from repro.sim.tracing import EnvironmentTracer


def run_sample(env):
    def worker(env):
        yield env.timeout(1.0)
        yield env.timeout(2.0)

    env.process(worker(env), name="sample-worker")
    env.run()


class TestTracer:
    def test_records_timeouts_and_processes(self):
        env = Environment()
        tracer = EnvironmentTracer(env)
        run_sample(env)
        kinds = {entry.kind for entry in tracer.entries}
        assert "timeout" in kinds
        assert "process" in kinds
        names = {e.name for e in tracer.of_kind("process")}
        assert "sample-worker" in names

    def test_timestamps_are_ordered(self):
        env = Environment()
        tracer = EnvironmentTracer(env)
        run_sample(env)
        times = [e.at_ms for e in tracer.entries]
        assert times == sorted(times)

    def test_between_window(self):
        env = Environment()
        tracer = EnvironmentTracer(env)
        run_sample(env)
        early = tracer.between(0.0, 1.5)
        assert all(e.at_ms < 1.5 for e in early)
        assert early  # the t=1.0 timeout is in the window

    def test_capacity_bound_drops_oldest(self):
        env = Environment()
        tracer = EnvironmentTracer(env, capacity=3)
        for _ in range(10):
            env.timeout(1.0)
        env.run()
        assert len(tracer.entries) == 3
        assert tracer.dropped == 7

    def test_capacity_keeps_the_newest_entries(self):
        env = Environment()
        tracer = EnvironmentTracer(env, capacity=3)
        for i in range(10):
            env.timeout(float(i + 1))
        env.run()
        assert [e.at_ms for e in tracer.entries] == [8.0, 9.0, 10.0]

    def test_detach_restores_step(self):
        env = Environment()
        tracer = EnvironmentTracer(env)
        tracer.detach()
        run_sample(env)
        assert list(tracer.entries) == []

    def test_format_tail(self):
        env = Environment()
        tracer = EnvironmentTracer(env, capacity=2)
        run_sample(env)
        text = tracer.format_tail()
        assert "dropped" in text
        assert "ok" in text

    def test_failure_marked(self):
        env = Environment()
        tracer = EnvironmentTracer(env)

        def failing(env):
            yield env.timeout(1.0)
            raise RuntimeError("boom")

        def catcher(env):
            try:
                yield env.process(failing(env), name="dying")
            except RuntimeError:
                pass

        env.process(catcher(env))
        env.run()
        dying = [e for e in tracer.of_kind("process") if e.name == "dying"]
        assert dying and not dying[0].ok

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            EnvironmentTracer(Environment(), capacity=0)

    def test_nested_tracers_detach_in_reverse_order(self):
        env = Environment()
        outer = EnvironmentTracer(env)
        inner = EnvironmentTracer(env)
        inner.detach()
        outer.detach()
        run_sample(env)
        assert list(outer.entries) == []
        assert list(inner.entries) == []

    def test_out_of_order_detach_raises_and_keeps_tracing(self):
        env = Environment()
        outer = EnvironmentTracer(env)
        inner = EnvironmentTracer(env)
        with pytest.raises(RuntimeError, match="reverse attach order"):
            outer.detach()
        # The refused detach must not have disturbed the stack: the
        # inner tracer still observes events, then unwinding works.
        run_sample(env)
        assert inner.entries
        inner.detach()
        outer.detach()

    def test_double_detach_raises(self):
        env = Environment()
        tracer = EnvironmentTracer(env)
        tracer.detach()
        with pytest.raises(RuntimeError, match="exactly once"):
            tracer.detach()

    def test_tracing_does_not_change_simulation_results(self):
        def simulate(traced):
            env = Environment()
            if traced:
                EnvironmentTracer(env)
            results = []

            def worker(env):
                for _ in range(5):
                    yield env.timeout(1.5)
                    results.append(env.now)

            env.process(worker(env))
            env.run()
            return results

        assert simulate(True) == simulate(False)
