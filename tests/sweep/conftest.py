"""Shared helpers for the sweep subsystem tests.

Most orchestration tests substitute :func:`fake_execute` for the real
simulation: a deterministic result document derived from the config
key alone, so cache/pool/retry behaviour is tested in milliseconds.
The handful of end-to-end equivalence tests run real (micro-sized)
simulations. Helpers that cross the process boundary in pool-mode
tests must stay module-level so they pickle.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
import tempfile
import time

from repro.experiments.runner import ScenarioConfig, ScenarioResult
from repro.experiments.scales import ScalePreset
from repro.sweep import result_to_dict
from repro.workload.recorder import ResponseSummary

#: Sub-tiny preset so real-simulation tests stay around a second.
MICRO = ScalePreset(
    name="micro",
    cylinders=13,
    steady_duration_ms=1_500.0,
    warmup_ms=300.0,
    note="test-only",
)


def micro_spec_base(**overrides):
    base = dict(user_rate_per_s=105.0, read_fraction=1.0, scale=MICRO, seed=7)
    base.update(overrides)
    return base


def fake_result(config: ScenarioConfig) -> ScenarioResult:
    """A synthetic result whose numbers identify the config that made it."""
    summary = ResponseSummary(
        count=10,
        mean_ms=float(config.stripe_size),
        std_ms=0.25,
        min_ms=1.0,
        max_ms=float(config.stripe_size) * 2,
        p90_ms=1.5,
        p99_ms=1.9,
    )
    return ScenarioResult(
        config=config,
        response=summary,
        read_response=summary,
        write_response=summary,
        simulated_ms=1000.0,
        requests_completed=10,
        mapped_units_per_disk=42,
        disk_utilization=[0.5, 0.25, 0.125],
        reconstruction=None,
        integrity_errors=[],
    )


def fake_execute(key: dict) -> dict:
    """Drop-in for the worker entry point, minus the simulation."""
    return result_to_dict(fake_result(ScenarioConfig.from_key(key)))


def _marker_path(key: dict) -> pathlib.Path:
    digest = hashlib.sha1(
        json.dumps(key, sort_keys=True, default=str).encode("utf-8")
    ).hexdigest()
    return pathlib.Path(tempfile.gettempdir()) / f"repro-sweep-flaky-{digest}"


def clear_markers(spec) -> None:
    for point in spec.points():
        marker = _marker_path(point.config.to_key())
        if marker.exists():
            marker.unlink()


def fail_once_execute(key: dict) -> dict:
    """Fails the first attempt per key (marker file), succeeds after.

    The marker lives on disk so the behaviour holds across worker
    processes — this is the injected "worker failure" the retry tests
    exercise.
    """
    marker = _marker_path(key)
    if not marker.exists():
        marker.write_text("attempted")
        raise RuntimeError("injected worker failure")
    return fake_execute(key)


def always_fail_execute(key: dict) -> dict:
    raise RuntimeError("this point never succeeds")


def data_loss_execute(key: dict) -> dict:
    from repro.array.faults import DataLossError

    raise DataLossError("array lost data", failed_disks=(1, 3))


def sleepy_execute(key: dict) -> dict:
    time.sleep(3.0)
    return fake_execute(key)
