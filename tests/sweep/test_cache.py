"""Unit tests for the content-addressed result cache."""

import json

from repro.experiments.runner import ScenarioConfig
from repro.recon.sweeper import CycleRecord, ReconstructionResult
from repro.sweep import (
    ResultCache,
    config_cache_key,
    result_from_dict,
    result_to_dict,
)

from tests.sweep.conftest import fake_result, micro_spec_base


def micro_config(**overrides):
    kwargs = dict(micro_spec_base(), stripe_size=4)
    kwargs.update(overrides)
    return ScenarioConfig(**kwargs)


class TestCacheKey:
    def test_stable_for_equal_configs(self):
        assert config_cache_key(micro_config()) == config_cache_key(micro_config())

    def test_differs_across_configs(self):
        assert config_cache_key(micro_config()) != config_cache_key(
            micro_config(stripe_size=5)
        )

    def test_differs_across_package_versions(self):
        key = config_cache_key(micro_config(), version="1.0.0")
        assert key != config_cache_key(micro_config(), version="1.0.1")

    def test_survives_config_json_round_trip(self):
        config = micro_config()
        rebuilt = ScenarioConfig.from_key(json.loads(json.dumps(config.to_key())))
        assert config_cache_key(rebuilt) == config_cache_key(config)


class TestResultSerialization:
    def test_round_trip_without_reconstruction(self):
        result = fake_result(micro_config())
        assert result_from_dict(result_to_dict(result)) == result

    def test_round_trip_with_reconstruction(self):
        result = fake_result(micro_config(mode="recon"))
        result.reconstruction = ReconstructionResult(
            reconstruction_time_ms=123.5,
            total_units=1092,
            swept_units=1000,
            user_built_units=92,
            resweeps=1,
            cycles=[
                CycleRecord(
                    offset=0, start_ms=0.0, read_phase_ms=10.25, write_phase_ms=5.5
                ),
                CycleRecord(
                    offset=1, start_ms=15.75, read_phase_ms=9.0, write_phase_ms=4.125
                ),
            ],
        )
        assert result_from_dict(result_to_dict(result)) == result

    def test_round_trip_with_metrics_block(self):
        # The metrics block is JSON-native by construction
        # (MetricsRegistry.to_dict) and is carried verbatim, so cached
        # and fresh runs report identically.
        result = fake_result(micro_config())
        result.metrics = {
            "measure_since_ms": 300.0,
            "end_ms": 1500.0,
            "window_ms": 1200.0,
            "counters": {"requests-completed": 10},
            "latency_ms": {
                "user-read": {"count": 10, "mean": 4.0, "min": 1.0, "max": 8.0,
                              "p50": 4.0, "p90": 8.0, "p99": 8.0,
                              "bounds": [2.0, 4.0, 8.0], "counts": [1, 4, 5, 0]},
            },
            "disks": [{"disk": 0, "utilization": 0.5, "busy_ms": 600.0,
                       "completed": 10, "queue_depth_mean": 0.25,
                       "queue_depth_max": 2.0}],
            "recon_progress": [{"total_units": 4, "points": [[10.0, 1], [40.0, 4]]}],
        }
        assert result_from_dict(result_to_dict(result)) == result
        document = json.loads(json.dumps(result_to_dict(result)))
        assert result_from_dict(document) == result

    def test_round_trip_is_json_exact(self):
        # JSON's shortest-repr float encoding is lossless, which is
        # what makes cached figure rows byte-identical to fresh ones.
        result = fake_result(micro_config())
        document = json.loads(json.dumps(result_to_dict(result)))
        assert result_from_dict(document) == result


class TestResultCache:
    def test_miss_on_empty_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get(micro_config()) is None
        assert len(cache) == 0

    def test_put_get_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        result = fake_result(micro_config())
        cache.put(micro_config(), result)
        assert cache.get(micro_config()) == result
        assert len(cache) == 1

    def test_miss_for_a_different_config(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(micro_config(), fake_result(micro_config()))
        assert cache.get(micro_config(stripe_size=5)) is None

    def test_version_bump_invalidates(self, tmp_path):
        old = ResultCache(tmp_path, version="1.0.0")
        old.put(micro_config(), fake_result(micro_config()))
        new = ResultCache(tmp_path, version="1.0.1")
        assert new.get(micro_config()) is None
        # The old entry is untouched, just unreachable from the new key.
        assert old.get(micro_config()) is not None

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        config = micro_config()
        cache.put(config, fake_result(config))
        cache.path_for(config).write_text("{not json", encoding="utf-8")
        assert cache.get(config) is None

    def test_format_mismatch_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        config = micro_config()
        cache.put(config, fake_result(config))
        document = json.loads(cache.path_for(config).read_text(encoding="utf-8"))
        document["cache_format"] = 999
        cache.path_for(config).write_text(json.dumps(document), encoding="utf-8")
        assert cache.get(config) is None

    def test_entry_is_self_describing(self, tmp_path):
        cache = ResultCache(tmp_path)
        config = micro_config()
        cache.put(config, fake_result(config))
        document = json.loads(cache.path_for(config).read_text(encoding="utf-8"))
        assert set(document) == {
            "cache_format",
            "package_version",
            "config",
            "result",
        }
        assert ScenarioConfig.from_key(document["config"]) == config

    def test_clear_removes_everything(self, tmp_path):
        cache = ResultCache(tmp_path)
        for stripe_size in (4, 5, 6):
            config = micro_config(stripe_size=stripe_size)
            cache.put(config, fake_result(config))
        assert len(cache) == 3
        assert cache.clear() == 3
        assert len(cache) == 0
        assert cache.get(micro_config()) is None


class TestUnwritableCache:
    """Satellite: a cache that cannot be written must not kill a sweep."""

    def unwritable_cache(self, tmp_path):
        # A regular file squatting on the cache path: every mkdir under
        # it fails with NotADirectoryError (an OSError), the same
        # failure class as a read-only directory or a full disk.
        squatter = tmp_path / "cache"
        squatter.write_text("not a directory")
        return ResultCache(squatter)

    def test_first_failed_write_warns_and_continues(self, tmp_path):
        import pytest

        cache = self.unwritable_cache(tmp_path)
        config = micro_config()
        with pytest.warns(RuntimeWarning, match="continuing uncached"):
            cache.put(config, fake_result(config))
        assert cache.get(config) is None

    def test_subsequent_writes_are_silent_no_ops(self, tmp_path):
        import warnings

        import pytest

        cache = self.unwritable_cache(tmp_path)
        config = micro_config()
        with pytest.warns(RuntimeWarning):
            cache.put(config, fake_result(config))
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            for stripe_size in (4, 5, 6):
                other = micro_config(stripe_size=stripe_size)
                cache.put(other, fake_result(other))
        assert len(cache) == 0

    def test_sweep_completes_against_an_unwritable_cache(self, tmp_path):
        import pytest

        from repro.sweep import SweepOptions, SweepSpec, run_sweep
        from tests.sweep.conftest import fake_execute

        squatter = tmp_path / "cache"
        squatter.write_text("not a directory")
        spec = SweepSpec(
            axes=[("stripe_size", [4, 5])], base=micro_spec_base()
        )
        options = SweepOptions(cache=squatter)
        with pytest.warns(RuntimeWarning, match="continuing uncached"):
            outcome = run_sweep(spec, options, execute=fake_execute)
        assert len(outcome.results) == 2
        assert outcome.summary.executed == 2
        assert outcome.summary.cache_hits == 0
