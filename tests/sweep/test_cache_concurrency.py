"""Regression tests: cache writes are atomic under concurrent readers.

Service shards and parallel CLI sweeps share one cache directory; a
reader racing a writer must see either a miss or a complete entry,
never torn JSON. The interleaved writer/reader test hammers one entry
from a writer thread while a reader thread polls it; the atomicio unit
tests pin down the temp-file + ``os.replace`` mechanics the cache (and
the whole service substrate) relies on.
"""

import json
import threading

import pytest

from repro.atomicio import atomic_write_json, read_json
from repro.experiments.runner import ScenarioConfig
from repro.sweep import ResultCache, result_to_dict

from tests.sweep.conftest import fake_result, micro_spec_base


def micro_config(stripe_size=4):
    return ScenarioConfig(**micro_spec_base(stripe_size=stripe_size))


class TestAtomicWriteJson:
    def test_writes_parseable_json_and_creates_parents(self, tmp_path):
        path = tmp_path / "a" / "b" / "doc.json"
        atomic_write_json(path, {"x": 1})
        assert json.loads(path.read_text(encoding="utf-8")) == {"x": 1}

    def test_replaces_existing_file(self, tmp_path):
        path = tmp_path / "doc.json"
        atomic_write_json(path, {"version": 1})
        atomic_write_json(path, {"version": 2})
        assert read_json(path) == {"version": 2}

    def test_leaves_no_temp_files_behind(self, tmp_path):
        path = tmp_path / "doc.json"
        atomic_write_json(path, {"x": 1})
        assert [p.name for p in tmp_path.iterdir()] == ["doc.json"]

    def test_failed_write_keeps_the_old_document(self, tmp_path):
        path = tmp_path / "doc.json"
        atomic_write_json(path, {"x": 1})
        with pytest.raises(TypeError):
            atomic_write_json(path, {"x": object()})  # not JSON-safe
        assert read_json(path) == {"x": 1}
        assert [p.name for p in tmp_path.iterdir()] == ["doc.json"]

    def test_read_json_returns_none_on_missing_or_corrupt(self, tmp_path):
        assert read_json(tmp_path / "absent.json") is None
        broken = tmp_path / "broken.json"
        broken.write_text('{"truncated": ', encoding="utf-8")
        assert read_json(broken) is None


class TestInterleavedWriterReader:
    def test_reader_never_sees_a_torn_entry(self, tmp_path):
        """Writer rewrites one entry in a loop; reader polls it.

        Every read must be a miss (before the first write lands) or a
        complete, internally-consistent document. A non-atomic writer
        (truncate + write in place) fails this test immediately.
        """
        config = micro_config()
        writer_cache = ResultCache(tmp_path)
        reader_cache = ResultCache(tmp_path)
        document = result_to_dict(fake_result(config))
        stop = threading.Event()
        torn = []

        def writer():
            while not stop.is_set():
                writer_cache.put_dict(config, document)

        def reader():
            while not stop.is_set():
                seen = reader_cache.get_dict(config)
                if seen is not None and seen != document:
                    torn.append(seen)
                    return

        threads = [threading.Thread(target=writer), threading.Thread(target=reader)]
        for thread in threads:
            thread.start()
        # get_dict maps torn JSON to a miss internally; read the raw
        # file too so a torn write cannot hide behind that tolerance.
        path = writer_cache.path_for(config)
        for _ in range(500):
            try:
                text = path.read_text(encoding="utf-8")
            except OSError:
                continue
            try:
                json.loads(text)
            except ValueError:
                torn.append(text)
                break
        stop.set()
        for thread in threads:
            thread.join(timeout=10.0)
        assert not torn
        assert reader_cache.get_dict(config) == document

    def test_concurrent_writers_to_distinct_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        configs = [micro_config(stripe_size=g) for g in (4, 5, 6, 7)]
        documents = {
            config.stripe_size: result_to_dict(fake_result(config))
            for config in configs
        }

        def write_many(config):
            for _ in range(50):
                cache.put_dict(config, documents[config.stripe_size])

        threads = [
            threading.Thread(target=write_many, args=(config,))
            for config in configs
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        for config in configs:
            assert cache.get_dict(config) == documents[config.stripe_size]
