"""Unit tests for sweep grid enumeration."""

import pytest

from repro.experiments.runner import ScenarioConfig
from repro.sweep import SweepSpec, point_seed

from tests.sweep.conftest import MICRO, micro_spec_base


def make_spec(**kwargs):
    defaults = dict(
        axes=[("stripe_size", (4, 5)), ("mode", ("fault-free", "degraded"))],
        base=micro_spec_base(),
    )
    defaults.update(kwargs)
    return SweepSpec(**defaults)


class TestEnumeration:
    def test_row_major_first_axis_slowest(self):
        spec = make_spec()
        coords = [p.coords for p in spec.points()]
        assert coords == [
            {"stripe_size": 4, "mode": "fault-free"},
            {"stripe_size": 4, "mode": "degraded"},
            {"stripe_size": 5, "mode": "fault-free"},
            {"stripe_size": 5, "mode": "degraded"},
        ]

    def test_indices_are_sequential(self):
        spec = make_spec()
        assert [p.index for p in spec.points()] == [0, 1, 2, 3]

    def test_matches_hand_rolled_nested_loops(self):
        spec = make_spec()
        expected = [
            ScenarioConfig(stripe_size=k, mode=mode, **micro_spec_base())
            for k in (4, 5)
            for mode in ("fault-free", "degraded")
        ]
        assert spec.configs() == expected

    def test_size_and_describe(self):
        spec = make_spec()
        assert spec.size == 4
        assert spec.describe() == "stripe_size×2 · mode×2 = 4 points"

    def test_no_axes_is_a_single_fixed_point(self):
        spec = SweepSpec(axes=[], base=dict(micro_spec_base(), stripe_size=4))
        assert spec.size == 1
        assert spec.describe() == "fixed point = 1 points"
        (point,) = spec.points()
        assert point.coords == {}
        assert point.config.stripe_size == 4

    def test_same_spec_enumerates_identically(self):
        assert make_spec().points() == make_spec().points()


class TestSeeds:
    def test_default_reuses_base_seed(self):
        spec = make_spec()
        assert {p.config.seed for p in spec.points()} == {7}

    def test_vary_seed_gives_each_point_its_own_seed(self):
        spec = make_spec(vary_seed=True)
        seeds = [p.config.seed for p in spec.points()]
        assert len(set(seeds)) == len(seeds)

    def test_vary_seed_is_deterministic(self):
        first = [p.config.seed for p in make_spec(vary_seed=True).points()]
        second = [p.config.seed for p in make_spec(vary_seed=True).points()]
        assert first == second

    def test_vary_seed_depends_on_base_seed(self):
        lo = make_spec(vary_seed=True, base=micro_spec_base(seed=1))
        hi = make_spec(vary_seed=True, base=micro_spec_base(seed=2))
        lo_seeds = [p.config.seed for p in lo.points()]
        hi_seeds = [p.config.seed for p in hi.points()]
        assert lo_seeds != hi_seeds

    def test_point_seed_is_a_pinned_function(self):
        # Regression pin: the derivation must never drift across
        # platforms or releases, or caches and replications break.
        assert point_seed(1992, {"stripe_size": 4}) == point_seed(
            1992, {"stripe_size": 4}
        )
        assert point_seed(1992, {"stripe_size": 4}) != point_seed(
            1992, {"stripe_size": 5}
        )
        assert point_seed(1992, {"stripe_size": 4}) != point_seed(
            1993, {"stripe_size": 4}
        )

    def test_point_seed_ignores_coordinate_order(self):
        a = point_seed(7, {"x": 1, "y": 2})
        b = point_seed(7, {"y": 2, "x": 1})
        assert a == b


class TestValidation:
    def test_unknown_axis_rejected(self):
        with pytest.raises(ValueError, match="not a ScenarioConfig field"):
            SweepSpec(axes=[("warp_factor", (1, 2))])

    def test_duplicate_axis_rejected(self):
        with pytest.raises(ValueError, match="appears twice"):
            SweepSpec(axes=[("stripe_size", (4,)), ("stripe_size", (5,))])

    def test_axis_base_conflict_rejected(self):
        with pytest.raises(ValueError, match="both an axis and a base field"):
            SweepSpec(axes=[("stripe_size", (4,))], base={"stripe_size": 5})

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match="has no values"):
            SweepSpec(axes=[("stripe_size", ())])

    def test_unknown_base_field_rejected(self):
        with pytest.raises(ValueError, match="not a ScenarioConfig field"):
            SweepSpec(axes=[("stripe_size", (4,))], base={"warp_factor": 9})

    def test_vary_seed_conflicts_with_seed_axis(self):
        with pytest.raises(ValueError, match="vary_seed"):
            SweepSpec(axes=[("seed", (1, 2))], vary_seed=True)

    def test_scale_preset_in_base_is_accepted(self):
        spec = make_spec()
        assert all(p.config.scale is MICRO for p in spec.points())
