"""Tests for sweep execution: serial, pooled, retries, caching, timeouts.

Pool-mode tests use jobs=2 and the module-level execute helpers from
``tests.sweep.conftest`` (they must pickle into worker processes).
"""

import io

import pytest

from repro.array.faults import DataLossError
from repro.sweep import (
    ResultCache,
    SweepError,
    SweepOptions,
    SweepSpec,
    result_to_dict,
    run_sweep,
)

from tests.sweep.conftest import (
    always_fail_execute,
    clear_markers,
    data_loss_execute,
    fail_once_execute,
    fake_execute,
    fake_result,
    micro_spec_base,
    sleepy_execute,
)


def tiny_spec():
    return SweepSpec(axes=[("stripe_size", (4, 5))], base=micro_spec_base())


class TestSerial:
    def test_results_in_point_order(self):
        spec = tiny_spec()
        outcome = run_sweep(spec, execute=fake_execute)
        assert outcome.results == [fake_result(c) for c in spec.configs()]
        assert outcome.summary.total == 2
        assert outcome.summary.executed == 2
        assert outcome.summary.cache_hits == 0
        assert outcome.summary.failures == 0

    def test_accepts_a_plain_config_iterable(self):
        configs = tiny_spec().configs()
        outcome = run_sweep(configs, execute=fake_execute)
        assert outcome.results == [fake_result(c) for c in configs]

    def test_empty_sweep(self):
        outcome = run_sweep([], execute=fake_execute)
        assert outcome.results == []
        assert outcome.summary.total == 0

    def test_jobs_must_be_positive(self):
        with pytest.raises(ValueError, match="jobs"):
            run_sweep(tiny_spec(), SweepOptions(jobs=0), execute=fake_execute)

    def test_retries_recover_from_transient_failures(self):
        spec = tiny_spec()
        clear_markers(spec)
        try:
            outcome = run_sweep(
                spec, SweepOptions(retries=1), execute=fail_once_execute
            )
        finally:
            clear_markers(spec)
        assert outcome.results == [fake_result(c) for c in spec.configs()]
        assert outcome.summary.retries == 2  # one retry per point
        assert outcome.summary.failures == 0

    def test_strict_raises_when_budget_exhausted(self):
        with pytest.raises(SweepError, match="failed after 1 retries"):
            run_sweep(
                tiny_spec(),
                SweepOptions(retries=1),
                execute=always_fail_execute,
            )

    def test_non_strict_leaves_none_slots(self):
        outcome = run_sweep(
            tiny_spec(),
            SweepOptions(retries=0, strict=False),
            execute=always_fail_execute,
        )
        assert outcome.results == [None, None]
        assert outcome.summary.failures == 2
        assert outcome.summary.executed == 0

    def test_failures_carry_the_scenario_key(self):
        spec = tiny_spec()
        with pytest.raises(SweepError) as exc_info:
            run_sweep(spec, SweepOptions(retries=0), execute=always_fail_execute)
        assert exc_info.value.scenario_key == spec.points()[0].config.to_key()
        assert (
            exc_info.value.__cause__.scenario_key
            == spec.points()[0].config.to_key()
        )


class TestDataLoss:
    """DataLossError is a deterministic result, never a retried flake."""

    def test_data_loss_is_not_retried(self):
        outcome = run_sweep(
            tiny_spec(),
            SweepOptions(retries=3, strict=False),
            execute=data_loss_execute,
        )
        assert outcome.results == [None, None]
        assert outcome.summary.failures == 2
        # A generic failure would have burned 3 retries per point.
        assert outcome.summary.retries == 0

    def test_strict_mode_surfaces_data_loss_with_key(self):
        spec = tiny_spec()
        with pytest.raises(SweepError) as exc_info:
            run_sweep(spec, SweepOptions(retries=2), execute=data_loss_execute)
        cause = exc_info.value.__cause__
        assert isinstance(cause, DataLossError)
        assert cause.scenario_key == spec.points()[0].config.to_key()
        assert exc_info.value.scenario_key == cause.scenario_key

    def test_pool_mode_fails_fast_on_data_loss(self):
        outcome = run_sweep(
            tiny_spec(),
            SweepOptions(jobs=2, retries=3, strict=False),
            execute=data_loss_execute,
        )
        assert outcome.results == [None, None]
        assert outcome.summary.failures == 2
        assert outcome.summary.retries == 0


class TestCacheFlow:
    def test_second_run_is_all_cache_hits(self, tmp_path):
        spec = tiny_spec()
        first = run_sweep(spec, SweepOptions(cache=tmp_path), execute=fake_execute)
        assert (first.summary.executed, first.summary.cache_hits) == (2, 0)
        second = run_sweep(spec, SweepOptions(cache=tmp_path), execute=fake_execute)
        assert (second.summary.executed, second.summary.cache_hits) == (0, 2)
        assert second.results == first.results

    def test_cache_accepts_a_ready_instance(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_sweep(tiny_spec(), SweepOptions(cache=cache), execute=fake_execute)
        assert len(cache) == 2

    def test_partial_hits_run_only_the_misses(self, tmp_path):
        spec = tiny_spec()
        cache = ResultCache(tmp_path)
        point = spec.points()[0]
        cache.put_dict(point.config, fake_execute(point.config.to_key()))
        outcome = run_sweep(spec, SweepOptions(cache=cache), execute=fake_execute)
        assert (outcome.summary.executed, outcome.summary.cache_hits) == (1, 1)
        assert outcome.results == [fake_result(c) for c in spec.configs()]

    def test_no_cache_never_touches_disk(self, tmp_path):
        run_sweep(tiny_spec(), SweepOptions(cache=None), execute=fake_execute)
        assert list(tmp_path.iterdir()) == []


class TestPool:
    def test_pool_matches_serial(self, tmp_path):
        spec = tiny_spec()
        serial = run_sweep(spec, SweepOptions(jobs=1), execute=fake_execute)
        pooled = run_sweep(spec, SweepOptions(jobs=2), execute=fake_execute)
        assert pooled.results == serial.results
        assert pooled.summary.executed == 2

    def test_pool_populates_cache_for_serial_rerun(self, tmp_path):
        spec = tiny_spec()
        pooled = run_sweep(
            spec, SweepOptions(jobs=2, cache=tmp_path), execute=fake_execute
        )
        rerun = run_sweep(
            spec, SweepOptions(jobs=1, cache=tmp_path), execute=fake_execute
        )
        assert (rerun.summary.executed, rerun.summary.cache_hits) == (0, 2)
        assert rerun.results == pooled.results

    def test_worker_failure_is_retried(self):
        spec = tiny_spec()
        clear_markers(spec)
        try:
            outcome = run_sweep(
                spec,
                SweepOptions(jobs=2, retries=1),
                execute=fail_once_execute,
            )
        finally:
            clear_markers(spec)
        assert outcome.results == [fake_result(c) for c in spec.configs()]
        assert outcome.summary.retries == 2
        assert outcome.summary.failures == 0

    def test_pool_strict_raises_when_budget_exhausted(self):
        with pytest.raises(SweepError):
            run_sweep(
                tiny_spec(),
                SweepOptions(jobs=2, retries=0),
                execute=always_fail_execute,
            )

    def test_point_timeout_fails_the_point(self):
        spec = SweepSpec(axes=[("stripe_size", (4,))], base=micro_spec_base())
        outcome = run_sweep(
            spec,
            SweepOptions(jobs=2, timeout_s=0.3, retries=0, strict=False),
            execute=sleepy_execute,
        )
        assert outcome.results == [None]
        assert outcome.summary.failures == 1

    def test_falls_back_to_serial_when_pool_unavailable(self, monkeypatch):
        import repro.sweep.pool as pool_module

        def broken_pool(*args, **kwargs):
            raise OSError("no process support here")

        monkeypatch.setattr(
            pool_module.concurrent.futures, "ProcessPoolExecutor", broken_pool
        )
        stream = io.StringIO()
        spec = tiny_spec()
        outcome = run_sweep(
            spec,
            SweepOptions(jobs=4, progress=True, stream=stream),
            execute=fake_execute,
        )
        assert outcome.results == [fake_result(c) for c in spec.configs()]
        assert "process pool unavailable" in stream.getvalue()


class TestRealSimulation:
    """End-to-end: the actual simulation, at micro scale."""

    def test_pool_serial_and_cache_agree_exactly(self, tmp_path):
        spec = SweepSpec(
            axes=[("mode", ("fault-free", "degraded"))],
            base=dict(micro_spec_base(), stripe_size=4),
        )
        serial = run_sweep(spec, SweepOptions(jobs=1))
        pooled = run_sweep(spec, SweepOptions(jobs=2, cache=tmp_path))
        cached = run_sweep(spec, SweepOptions(jobs=1, cache=tmp_path))
        assert (cached.summary.executed, cached.summary.cache_hits) == (0, 2)
        serial_docs = [result_to_dict(r) for r in serial.results]
        assert [result_to_dict(r) for r in pooled.results] == serial_docs
        assert [result_to_dict(r) for r in cached.results] == serial_docs
