"""Tests for the embeddable-engine surface of run_sweep.

``SweepOptions.on_event`` must narrate every observable step (with the
serialized result attached to completed points, so a consumer can
checkpoint as points land), and ``SweepOptions.cancel`` must stop the
sweep at the next point boundary with :class:`SweepCancelled`.
"""

import threading

import pytest

from repro.sweep import (
    SweepCancelled,
    SweepOptions,
    SweepSpec,
    result_from_dict,
    run_sweep,
)

from tests.sweep.conftest import (
    always_fail_execute,
    fake_execute,
    fake_result,
    micro_spec_base,
)


def tiny_spec():
    return SweepSpec(axes=[("stripe_size", (4, 5, 6))], base=micro_spec_base())


class TestEvents:
    def test_executed_events_carry_results_in_order(self):
        spec = tiny_spec()
        events = []
        run_sweep(
            spec, SweepOptions(on_event=events.append), execute=fake_execute
        )
        assert [e.kind for e in events] == ["executed"] * 3
        assert [e.index for e in events] == [0, 1, 2]
        assert [e.completed for e in events] == [1, 2, 3]
        assert all(e.total == 3 for e in events)
        for event, config in zip(events, spec.configs()):
            assert event.config_key == config.to_key()
            assert result_from_dict(event.result) == fake_result(config)

    def test_cache_hits_emit_the_cached_result(self, tmp_path):
        spec = tiny_spec()
        options = SweepOptions(cache=tmp_path)
        run_sweep(spec, options, execute=fake_execute)  # warm the cache
        events = []
        run_sweep(
            spec,
            SweepOptions(cache=tmp_path, on_event=events.append),
            execute=always_fail_execute,  # a cache miss would blow up
        )
        assert [e.kind for e in events] == ["cache-hit"] * 3
        for event, config in zip(events, spec.configs()):
            assert result_from_dict(event.result) == fake_result(config)

    def test_failures_emit_retried_then_failed(self):
        events = []
        run_sweep(
            tiny_spec(),
            SweepOptions(retries=1, strict=False, on_event=events.append),
            execute=always_fail_execute,
        )
        per_point = [e.kind for e in events if e.index == 0]
        assert per_point == ["retried", "failed"]
        failed = [e for e in events if e.kind == "failed"]
        assert len(failed) == 3
        assert all("never succeeds" in e.message for e in failed)
        assert failed[-1].completed == 3  # failures count as progress

    def test_events_are_optional(self):
        outcome = run_sweep(tiny_spec(), SweepOptions(), execute=fake_execute)
        assert outcome.summary.executed == 3


class TestCancellation:
    def test_preset_token_cancels_before_any_point(self):
        cancel = threading.Event()
        cancel.set()
        with pytest.raises(SweepCancelled):
            run_sweep(
                tiny_spec(), SweepOptions(cancel=cancel), execute=fake_execute
            )

    def test_cancel_fires_at_the_next_point_boundary(self, tmp_path):
        spec = tiny_spec()
        cancel = threading.Event()
        completed = []

        def on_event(event):
            completed.append(event.index)
            cancel.set()  # cancel as soon as the first point lands

        with pytest.raises(SweepCancelled):
            run_sweep(
                spec,
                SweepOptions(cache=tmp_path, cancel=cancel, on_event=on_event),
                execute=fake_execute,
            )
        assert completed == [0]
        # The completed point made it into the cache: a resumed run
        # starts from there instead of re-simulating.
        events = []
        run_sweep(
            spec,
            SweepOptions(cache=tmp_path, on_event=events.append),
            execute=fake_execute,
        )
        assert [e.kind for e in events] == ["cache-hit", "executed", "executed"]

    def test_preset_token_cancels_pool_mode(self):
        cancel = threading.Event()
        cancel.set()
        with pytest.raises(SweepCancelled):
            run_sweep(
                tiny_spec(),
                SweepOptions(jobs=2, cancel=cancel),
                execute=fake_execute,
            )
