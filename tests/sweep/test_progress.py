"""Tests for sweep progress reporting and summaries."""

import io

from repro.sweep import ProgressReporter, SweepSummary


class TestSweepSummary:
    def test_completed_counts_hits_and_executions(self):
        summary = SweepSummary(total=10, executed=6, cache_hits=3)
        assert summary.completed == 9

    def test_format_mentions_the_accounting(self):
        summary = SweepSummary(
            total=4, executed=2, cache_hits=2, elapsed_s=4.0
        )
        text = summary.format()
        assert "4 points" in text
        assert "2 executed" in text
        assert "2 cache hits" in text
        assert "0.5 points/s" in text

    def test_format_flags_failures_and_retries(self):
        summary = SweepSummary(total=3, executed=1, failures=2, retries=5)
        text = summary.format()
        assert "2 FAILED" in text
        assert "5 retries" in text

    def test_format_omits_zero_failures(self):
        assert "FAILED" not in SweepSummary(total=1, executed=1).format()


class TestProgressReporter:
    def test_counts_every_event(self):
        reporter = ProgressReporter(total=5)
        reporter.cache_hit()
        reporter.executed()
        reporter.executed()
        reporter.retried()
        reporter.failed()
        summary = reporter.finish()
        assert summary.cache_hits == 1
        assert summary.executed == 2
        assert summary.retries == 1
        assert summary.failures == 1
        assert summary.elapsed_s >= 0.0

    def test_finish_prints_summary_when_enabled(self):
        stream = io.StringIO()
        reporter = ProgressReporter(total=1, enabled=True, stream=stream)
        reporter.executed()
        reporter.finish()
        assert "sweep summary: 1 points, 1 executed" in stream.getvalue()

    def test_silent_when_disabled(self):
        stream = io.StringIO()
        reporter = ProgressReporter(total=1, enabled=False, stream=stream)
        reporter.executed()
        reporter.note("something happened")
        reporter.finish()
        assert stream.getvalue() == ""

    def test_note_prints_when_enabled(self):
        stream = io.StringIO()
        reporter = ProgressReporter(total=1, enabled=True, stream=stream)
        reporter.note("pool restarted")
        assert "[sweep] pool restarted" in stream.getvalue()

    def test_no_per_point_lines_on_non_tty(self):
        stream = io.StringIO()  # isatty() is False
        reporter = ProgressReporter(total=2, enabled=True, stream=stream)
        reporter.executed()
        assert stream.getvalue() == ""

    def test_progress_line_shape(self):
        reporter = ProgressReporter(total=4)
        reporter.cache_hit()
        reporter.executed()
        line = reporter.progress_line()
        assert line.startswith("[sweep] 2/4 points (1 cached)")
        assert "points/s" in line
        assert "ETA" in line
