"""Smoke tests: the fast examples must run to completion.

The simulation-heavy examples (quickstart, oltp_recovery, ...) are
exercised in CI-sized form by the integration suite; here we execute
the two instant ones end to end and check the others at least parse.
"""

import pathlib
import runpy
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
ALL_EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


class TestFastExamples:
    def test_layout_explorer_runs(self, capsys, monkeypatch):
        monkeypatch.setattr(sys, "argv", ["layout_explorer.py"])
        runpy.run_path(str(EXAMPLES_DIR / "layout_explorer.py"), run_name="__main__")
        out = capsys.readouterr().out
        assert "RAID 5" in out
        assert "declustered" in out

    def test_design_workbench_runs(self, capsys, monkeypatch):
        monkeypatch.setattr(sys, "argv", ["design_workbench.py"])
        runpy.run_path(str(EXAMPLES_DIR / "design_workbench.py"), run_name="__main__")
        out = capsys.readouterr().out
        assert "paper-bd5" in out
        assert "Catalog selection" in out


class TestAllExamplesParse:
    def test_expected_inventory(self):
        assert ALL_EXAMPLES == [
            "continuous_operation.py",
            "design_workbench.py",
            "layout_explorer.py",
            "oltp_recovery.py",
            "quickstart.py",
            "reconstruction_race.py",
            "throttled_recovery.py",
        ]

    @pytest.mark.parametrize("name", ALL_EXAMPLES)
    def test_compiles(self, name):
        source = (EXAMPLES_DIR / name).read_text(encoding="utf-8")
        compile(source, name, "exec")

    @pytest.mark.parametrize("name", ALL_EXAMPLES)
    def test_has_module_docstring(self, name):
        import ast

        tree = ast.parse((EXAMPLES_DIR / name).read_text(encoding="utf-8"))
        assert ast.get_docstring(tree), f"{name} lacks a docstring"
