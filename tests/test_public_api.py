"""The public API surface: everything advertised must import and work."""

import repro


class TestPublicSurface:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version_is_a_string(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2

    def test_docstring_quickstart_runs(self):
        # The example in the package docstring, verbatim in spirit.
        result = repro.run_scenario(
            repro.ScenarioConfig(
                stripe_size=4,
                user_rate_per_s=105,
                read_fraction=0.5,
                mode="fault-free",
                scale="tiny",
            )
        )
        assert result.response.count > 0

    def test_algorithms_are_exported(self):
        assert len(repro.ALGORITHMS) == 4
        assert repro.BASELINE in repro.ALGORITHMS

    def test_layout_and_design_round_trip(self):
        design = repro.paper_design(4)
        layout = repro.DeclusteredLayout(design)
        reports = repro.evaluate_layout(layout)
        assert sum(1 for r in reports if r.passed) >= 5
