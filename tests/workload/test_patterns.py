"""Unit tests for trace pattern generators."""

import pytest

from repro.workload.patterns import phased, sequential_scan, zipf_hot_spot
from repro.workload.trace import TraceRecord


class TestSequentialScan:
    def test_addresses_advance_strictly(self):
        records = sequential_scan(num_units=100, length=20)
        units = [r.logical_unit for r in records]
        assert units == list(range(20))

    def test_timestamps_increase(self):
        records = sequential_scan(num_units=100, length=20)
        times = [r.at_ms for r in records]
        assert times == sorted(times)
        assert times[0] > 0

    def test_multi_unit_accesses(self):
        records = sequential_scan(num_units=100, length=20, access_units=4)
        assert len(records) == 5
        assert [r.logical_unit for r in records] == [0, 4, 8, 12, 16]
        assert all(r.num_units == 4 for r in records)

    def test_write_scan(self):
        records = sequential_scan(num_units=50, length=10, is_write=True)
        assert all(r.is_write for r in records)

    def test_overflow_rejected(self):
        with pytest.raises(ValueError):
            sequential_scan(num_units=10, start_unit=5, length=10)

    def test_deterministic(self):
        assert sequential_scan(100, length=10, seed=5) == sequential_scan(
            100, length=10, seed=5
        )


class TestZipfHotSpot:
    def test_record_count_and_range(self):
        records = zipf_hot_spot(num_units=1000, count=200, working_set=50)
        assert len(records) == 200
        assert all(0 <= r.logical_unit < 50 for r in records)

    def test_skew_concentrates_on_low_ranks(self):
        skewed = zipf_hot_spot(num_units=1000, count=2000, skew=1.5, working_set=100)
        top_share = sum(1 for r in skewed if r.logical_unit < 10) / len(skewed)
        flat = zipf_hot_spot(num_units=1000, count=2000, skew=0.0, working_set=100)
        flat_share = sum(1 for r in flat if r.logical_unit < 10) / len(flat)
        assert top_share > 2 * flat_share

    def test_zero_skew_is_roughly_uniform(self):
        records = zipf_hot_spot(num_units=1000, count=5000, skew=0.0, working_set=10)
        counts = [0] * 10
        for record in records:
            counts[record.logical_unit] += 1
        assert max(counts) < 2 * min(counts)

    def test_read_fraction(self):
        records = zipf_hot_spot(num_units=100, count=1000, read_fraction=0.8)
        reads = sum(1 for r in records if not r.is_write)
        assert reads / 1000 == pytest.approx(0.8, abs=0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            zipf_hot_spot(num_units=10, count=5, working_set=20)
        with pytest.raises(ValueError):
            zipf_hot_spot(num_units=10, count=5, skew=-1)


class TestPhased:
    def test_phases_are_sequenced(self):
        first = [TraceRecord(at_ms=5.0, is_write=False, logical_unit=0)]
        second = [TraceRecord(at_ms=1.0, is_write=True, logical_unit=1)]
        merged = phased([first, second], gap_ms=10.0)
        assert merged[0].at_ms == 5.0
        assert merged[1].at_ms == pytest.approx(16.0)  # 5 + 10 gap + 1

    def test_empty_phases_skipped(self):
        only = [TraceRecord(at_ms=1.0, is_write=False, logical_unit=0)]
        merged = phased([[], only])
        assert len(merged) == 1

    def test_replay_through_the_array(self):
        from repro.workload import TraceWorkload
        from tests.conftest import build_array

        array = build_array(with_datastore=True)
        trace = phased(
            [
                sequential_scan(array.addressing.num_data_units, length=30,
                                rate_per_s=500.0),
                zipf_hot_spot(array.addressing.num_data_units, count=30,
                              rate_per_s=500.0),
            ],
            gap_ms=50.0,
        )
        workload = TraceWorkload(array.controller, trace)
        workload.run()
        array.env.run(until=workload.drained())
        assert workload.completed == 60
        assert workload.integrity_errors == []
