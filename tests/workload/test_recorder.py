"""Unit tests for the response recorder."""

import pytest

from repro.workload import ResponseRecorder


def fill(recorder, samples):
    for complete, response, is_write in samples:
        recorder.record(complete, response, is_write)


class TestFiltering:
    def test_warmup_excludes_early_completions(self):
        recorder = ResponseRecorder(warmup_ms=100.0)
        fill(recorder, [(50, 10, False), (150, 20, False), (250, 30, False)])
        assert recorder.responses() == [20, 30]

    def test_kind_filters(self):
        recorder = ResponseRecorder()
        fill(recorder, [(1, 10, False), (2, 20, True), (3, 30, False)])
        assert recorder.responses(reads_only=True) == [10, 30]
        assert recorder.responses(writes_only=True) == [20]

    def test_window_filters(self):
        recorder = ResponseRecorder()
        fill(recorder, [(10, 1, False), (20, 2, False), (30, 3, False)])
        assert recorder.responses(since_ms=15, until_ms=25) == [2]

    def test_len_counts_all_samples(self):
        recorder = ResponseRecorder(warmup_ms=100.0)
        fill(recorder, [(50, 10, False)])
        assert len(recorder) == 1  # raw count ignores warmup


class TestSummary:
    def test_mean_std(self):
        recorder = ResponseRecorder()
        fill(recorder, [(1, 10, False), (2, 20, False), (3, 30, False)])
        summary = recorder.summary()
        assert summary.count == 3
        assert summary.mean_ms == pytest.approx(20.0)
        assert summary.std_ms == pytest.approx((200 / 3) ** 0.5)
        assert summary.min_ms == 10
        assert summary.max_ms == 30

    def test_percentiles(self):
        # Nearest-rank: for samples 0..99 the p90 is the 90th smallest
        # (index 89), not the 91st — the old int(q*n) indexing was one
        # sample high.
        recorder = ResponseRecorder()
        fill(recorder, [(i, float(i), False) for i in range(100)])
        summary = recorder.summary()
        assert summary.p90_ms == 89.0
        assert summary.p99_ms == 98.0

    def test_empty_summary(self):
        summary = ResponseRecorder().summary()
        assert summary.count == 0
        assert summary.mean_ms == 0.0


class TestNearestRankRegression:
    """Hand-computed nearest-rank percentiles (the int(q*n) bias fix).

    Values here are ``ordered[ceil(q*n) - 1]`` computed by hand; the
    old indexing reported the *maximum* as p90 for n = 10.
    """

    def summarize(self, values):
        recorder = ResponseRecorder()
        fill(recorder, [(i, v, False) for i, v in enumerate(values)])
        return recorder.summary()

    def test_single_sample(self):
        summary = self.summarize([42.0])
        assert summary.p90_ms == 42.0
        assert summary.p99_ms == 42.0

    def test_ten_samples(self):
        # 10, 20, ..., 100: rank ceil(0.9*10)=9 -> 90.0 (the old code
        # reported 100.0, the maximum); rank ceil(0.99*10)=10 -> 100.0.
        summary = self.summarize([10.0 * k for k in range(1, 11)])
        assert summary.p90_ms == 90.0
        assert summary.p99_ms == 100.0

    def test_hundred_samples(self):
        # 1..100: rank ceil(0.9*100)=90 -> 90.0; rank ceil(99)=99 -> 99.0.
        summary = self.summarize([float(k) for k in range(1, 101)])
        assert summary.p90_ms == 90.0
        assert summary.p99_ms == 99.0

    def test_all_equal_samples(self):
        summary = self.summarize([7.5] * 13)
        assert summary.p90_ms == 7.5
        assert summary.p99_ms == 7.5
        assert summary.min_ms == summary.max_ms == 7.5
        assert summary.std_ms == 0.0

    def test_wrapper_matches_shared_summary(self):
        from repro.metrics import DistributionSummary

        values = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]
        summary = self.summarize(values)
        shared = DistributionSummary.of(values)
        assert summary.count == shared.count
        assert summary.mean_ms == shared.mean
        assert summary.std_ms == shared.std
        assert summary.min_ms == shared.minimum
        assert summary.max_ms == shared.maximum
        assert summary.p90_ms == shared.p90
        assert summary.p99_ms == shared.p99
