"""Unit tests for the response recorder."""

import pytest

from repro.workload import ResponseRecorder


def fill(recorder, samples):
    for complete, response, is_write in samples:
        recorder.record(complete, response, is_write)


class TestFiltering:
    def test_warmup_excludes_early_completions(self):
        recorder = ResponseRecorder(warmup_ms=100.0)
        fill(recorder, [(50, 10, False), (150, 20, False), (250, 30, False)])
        assert recorder.responses() == [20, 30]

    def test_kind_filters(self):
        recorder = ResponseRecorder()
        fill(recorder, [(1, 10, False), (2, 20, True), (3, 30, False)])
        assert recorder.responses(reads_only=True) == [10, 30]
        assert recorder.responses(writes_only=True) == [20]

    def test_window_filters(self):
        recorder = ResponseRecorder()
        fill(recorder, [(10, 1, False), (20, 2, False), (30, 3, False)])
        assert recorder.responses(since_ms=15, until_ms=25) == [2]

    def test_len_counts_all_samples(self):
        recorder = ResponseRecorder(warmup_ms=100.0)
        fill(recorder, [(50, 10, False)])
        assert len(recorder) == 1  # raw count ignores warmup


class TestSummary:
    def test_mean_std(self):
        recorder = ResponseRecorder()
        fill(recorder, [(1, 10, False), (2, 20, False), (3, 30, False)])
        summary = recorder.summary()
        assert summary.count == 3
        assert summary.mean_ms == pytest.approx(20.0)
        assert summary.std_ms == pytest.approx((200 / 3) ** 0.5)
        assert summary.min_ms == 10
        assert summary.max_ms == 30

    def test_percentiles(self):
        recorder = ResponseRecorder()
        fill(recorder, [(i, float(i), False) for i in range(100)])
        summary = recorder.summary()
        assert summary.p90_ms == pytest.approx(90.0)
        assert summary.p99_ms == pytest.approx(99.0)

    def test_empty_summary(self):
        summary = ResponseRecorder().summary()
        assert summary.count == 0
        assert summary.mean_ms == 0.0
