"""Unit tests for the synthetic workload generator."""

import pytest

from repro.workload import SyntheticWorkload, WorkloadConfig
from tests.conftest import build_array


def run_workload(array, config, duration_ms=None, max_requests=None):
    workload = SyntheticWorkload(array.controller, config)
    workload.run(duration_ms=duration_ms, max_requests=max_requests)
    array.env.run(until=array.env.now + (duration_ms or 60_000.0))
    array.env.run(until=workload.drained())
    return workload


class TestConfig:
    def test_interarrival(self):
        config = WorkloadConfig(access_rate_per_s=200, read_fraction=0.5)
        assert config.mean_interarrival_ms == pytest.approx(5.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkloadConfig(access_rate_per_s=0, read_fraction=0.5)
        with pytest.raises(ValueError):
            WorkloadConfig(access_rate_per_s=10, read_fraction=1.5)
        with pytest.raises(ValueError):
            WorkloadConfig(access_rate_per_s=10, read_fraction=0.5, access_units=0)


class TestGeneration:
    def test_rate_is_approximately_honored(self):
        array = build_array(with_datastore=False)
        workload = run_workload(
            array,
            WorkloadConfig(access_rate_per_s=100, read_fraction=1.0, seed=1),
            duration_ms=20_000.0,
        )
        # 100/s over 20 s: expect ~2000, Poisson sd ~45.
        assert workload.submitted == pytest.approx(2000, rel=0.10)

    def test_read_fraction_is_approximately_honored(self):
        array = build_array(with_datastore=False)
        workload = SyntheticWorkload(
            array.controller,
            WorkloadConfig(access_rate_per_s=200, read_fraction=0.7, seed=2),
        )
        workload.run(max_requests=500)
        array.env.run(until=workload.drained())
        reads = array.controller.stats.user_reads
        assert reads / 500 == pytest.approx(0.7, abs=0.06)

    def test_max_requests_cap(self):
        array = build_array(with_datastore=False)
        workload = SyntheticWorkload(
            array.controller,
            WorkloadConfig(access_rate_per_s=1000, read_fraction=1.0),
        )
        workload.run(max_requests=37)
        array.env.run(until=workload.drained())
        assert workload.submitted == 37
        assert workload.completed == 37

    def test_stop_halts_generation(self):
        array = build_array(with_datastore=False)
        workload = SyntheticWorkload(
            array.controller,
            WorkloadConfig(access_rate_per_s=1000, read_fraction=1.0),
        )
        workload.run(duration_ms=1e9)
        array.env.run(until=50.0)
        workload.stop()
        array.env.run(until=workload.drained())
        submitted = workload.submitted
        array.env.run(until=array.env.now + 1000.0)
        assert workload.submitted == submitted

    def test_requires_some_bound(self):
        array = build_array(with_datastore=False)
        workload = SyntheticWorkload(
            array.controller, WorkloadConfig(access_rate_per_s=10, read_fraction=1.0)
        )
        with pytest.raises(ValueError):
            workload.run()

    def test_determinism(self):
        def simulate():
            array = build_array(with_datastore=False)
            workload = SyntheticWorkload(
                array.controller,
                WorkloadConfig(access_rate_per_s=150, read_fraction=0.5, seed=9),
            )
            workload.run(max_requests=200)
            array.env.run(until=workload.drained())
            return array.env.now, workload.recorder.summary().mean_ms

        assert simulate() == simulate()

    def test_multi_unit_accesses_are_aligned(self):
        array = build_array(with_datastore=False)
        seen = []
        original = array.controller.submit

        def spy(request):
            seen.append(request.logical_unit)
            return original(request)

        array.controller.submit = spy
        workload = SyntheticWorkload(
            array.controller,
            WorkloadConfig(access_rate_per_s=500, read_fraction=1.0, access_units=4),
        )
        workload.run(max_requests=50)
        array.env.run(until=workload.drained())
        assert all(unit % 4 == 0 for unit in seen)


class TestVerification:
    def test_clean_run_has_no_integrity_errors(self):
        array = build_array(with_datastore=True)
        workload = run_workload(
            array,
            WorkloadConfig(access_rate_per_s=150, read_fraction=0.5, seed=3),
            duration_ms=5_000.0,
        )
        assert workload.integrity_errors == []
        assert workload.verify

    def test_verification_detects_corruption(self):
        # Corrupt the datastore behind the workload's back: the next
        # read of that unit must be flagged.
        array = build_array(with_datastore=True)
        controller = array.controller
        workload = SyntheticWorkload(
            controller, WorkloadConfig(access_rate_per_s=100, read_fraction=1.0, seed=4)
        )
        address = array.addressing.logical_unit_address(0)
        controller.datastore.write_unit(address.disk, address.offset, 0x0BAD)
        request = array.run_op(controller.read(0))
        workload._account(request)
        assert len(workload.integrity_errors) == 1

    def test_verification_disabled_without_datastore(self):
        array = build_array(with_datastore=False)
        workload = SyntheticWorkload(
            array.controller, WorkloadConfig(access_rate_per_s=10, read_fraction=0.5)
        )
        assert not workload.verify
