"""Unit tests for trace-driven workload replay."""

import pytest

from repro.workload import TraceRecord, TraceWorkload, load_trace, save_trace
from tests.conftest import build_array


class TestTraceRecord:
    def test_line_round_trip(self):
        record = TraceRecord(at_ms=12.5, is_write=True, logical_unit=42, num_units=3)
        assert TraceRecord.from_line(record.to_line()) == record

    def test_default_num_units(self):
        record = TraceRecord.from_line("5.0 r 7")
        assert record.num_units == 1
        assert not record.is_write

    def test_malformed_lines_rejected(self):
        with pytest.raises(ValueError):
            TraceRecord.from_line("5.0 x 7")
        with pytest.raises(ValueError):
            TraceRecord.from_line("5.0 r")

    def test_validation(self):
        with pytest.raises(ValueError):
            TraceRecord(at_ms=-1.0, is_write=False, logical_unit=0)
        with pytest.raises(ValueError):
            TraceRecord(at_ms=0.0, is_write=False, logical_unit=0, num_units=0)


class TestTraceIo:
    def test_save_and_load(self, tmp_path):
        records = [
            TraceRecord(at_ms=0.0, is_write=False, logical_unit=1),
            TraceRecord(at_ms=10.0, is_write=True, logical_unit=2, num_units=4),
        ]
        path = tmp_path / "trace.txt"
        save_trace(path, records)
        assert load_trace(path) == records

    def test_comments_and_blanks_skipped(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("# header\n\n1.0 r 5\n  # another\n2.0 w 6 2\n")
        records = load_trace(path)
        assert len(records) == 2


class TestTraceReplay:
    def test_replay_timing(self):
        array = build_array(with_datastore=False)
        records = [
            TraceRecord(at_ms=100.0, is_write=False, logical_unit=0),
            TraceRecord(at_ms=300.0, is_write=False, logical_unit=1),
        ]
        workload = TraceWorkload(array.controller, records)
        workload.run()
        array.env.run(until=workload.drained())
        samples = workload.recorder._samples
        assert len(samples) == 2
        # First access completed shortly after its 100 ms issue time.
        assert 100.0 < samples[0][0] < 300.0

    def test_out_of_order_records_are_sorted(self):
        array = build_array(with_datastore=False)
        records = [
            TraceRecord(at_ms=50.0, is_write=False, logical_unit=1),
            TraceRecord(at_ms=10.0, is_write=False, logical_unit=0),
        ]
        workload = TraceWorkload(array.controller, records)
        assert [r.at_ms for r in workload.records] == [10.0, 50.0]

    def test_verified_replay_is_clean(self):
        array = build_array(with_datastore=True)
        records = [
            TraceRecord(at_ms=i * 20.0, is_write=i % 2 == 0, logical_unit=i % 30)
            for i in range(40)
        ]
        workload = TraceWorkload(array.controller, records)
        workload.run()
        array.env.run(until=workload.drained())
        assert workload.integrity_errors == []
        assert workload.completed == 40

    def test_out_of_range_access_rejected(self):
        array = build_array()
        huge = array.addressing.num_data_units
        with pytest.raises(ValueError, match="exceeds"):
            TraceWorkload(
                array.controller,
                [TraceRecord(at_ms=0.0, is_write=False, logical_unit=huge)],
            )

    def test_stop_halts_replay(self):
        array = build_array(with_datastore=False)
        records = [
            TraceRecord(at_ms=i * 100.0, is_write=False, logical_unit=0)
            for i in range(10)
        ]
        workload = TraceWorkload(array.controller, records)
        workload.run()
        array.env.run(until=250.0)
        workload.stop()
        array.env.run(until=workload.drained())
        assert workload.submitted == 3

    def test_hot_spot_trace_hits_one_stripe(self):
        # A trace aimed at one stripe serializes on its lock — the kind
        # of pathology the uniform generator cannot produce.
        array = build_array(with_datastore=True)
        records = [
            TraceRecord(at_ms=0.0, is_write=True, logical_unit=0) for _ in range(5)
        ]
        workload = TraceWorkload(array.controller, records)
        workload.run()
        array.env.run(until=workload.drained())
        assert workload.integrity_errors == []
        stripe = array.layout.stripe_of_logical(0)
        assert array.controller.datastore.stripe_is_consistent(stripe)
